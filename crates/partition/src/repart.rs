//! Capacity-aware repartitioning of a *live* SD graph.
//!
//! [`crate::kway::part_graph`] answers the bootstrap question — partition a
//! mesh nobody owns yet, balancing cell counts. Mid-run repartitioning (the
//! `LbSpec::Repartition` escape hatch) asks a harder one: re-split the
//! runtime's [`crate::SdGraph`] so that every part fits a *byte capacity*
//! (per-rank `memory_bytes`, pricing tiles + ghost buffers), at a scale
//! where the recursive-bisection path is far too slow — a 10k-rank replan
//! over a million SDs has to come back in well under a second, because it
//! runs inside a load-balancing epoch.
//!
//! [`repartition_capacitated`] therefore picks between two strategies:
//!
//! - **Direct** (small graphs): re-weight the graph by resident bytes and
//!   run the full multilevel recursive-bisection partitioner, then repair
//!   capacity violations. Best cut quality; this is the path every
//!   scenario-scale replan takes.
//! - **Multilevel k-way** (cluster scale): coarsen by heavy-edge matching
//!   with a dense-scratch contraction (no hashing on the hot path), seed
//!   the coarsest graph with a weight-balanced contiguous sweep, then
//!   uncoarsen with boundary refinement that only ever touches the parts
//!   actually adjacent to a vertex — O(edges) per pass independent of k,
//!   where the direct k-way refinement's per-vertex `O(k)` connection
//!   array would cost ~10¹⁰ operations at 10k parts.
//!
//! Both strategies end in [`capacity_repair`]-style sweeps so no part
//! exceeds its byte capacity when a feasible assignment is reachable by
//! single-vertex moves. Determinism: same graph, weights, caps and seed
//! produce the same partition (the cross-substrate parity contract).

use crate::coarsen::{heavy_edge_matching, CoarseLevel};
use crate::graph::Csr;
use crate::kway::{part_graph, Partition, PartitionConfig};
use crate::metrics::{edge_cut, part_weights};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Above this vertex count (or direct-refinement work product) the
/// recursive-bisection path is abandoned for the k-independent multilevel
/// k-way scheme.
const DIRECT_MAX_N: usize = 8192;
const DIRECT_MAX_WORK: u64 = 1 << 25;

/// Partition `g` into `cfg.k` parts whose *byte* loads respect `caps`.
///
/// `bytes[v]` is the resident footprint of vertex `v` (what hosting it
/// costs a rank, e.g. [`crate::SdGraph::resident_bytes`]); `caps[p]` is the
/// byte capacity of part `p` (`u64::MAX` = unbounded). The returned
/// [`Partition`] balances byte loads within `cfg.imbalance` and keeps every
/// part under its cap whenever single-vertex repair moves can get there —
/// with infeasible caps (total bytes exceeding total capacity) the result
/// is best-effort rather than a panic, so callers can stage evacuations
/// across epochs.
///
/// # Panics
/// Panics when `bytes`/`caps` lengths disagree with the graph/`cfg.k`, or
/// when any capacity is zero (zero-capacity ranks must be excluded from
/// the part universe by the caller, not handed to the partitioner).
pub fn repartition_capacitated(
    g: &Csr,
    bytes: &[u64],
    caps: &[u64],
    cfg: &PartitionConfig,
) -> Partition {
    let n = g.n();
    assert_eq!(bytes.len(), n, "one byte weight per vertex");
    assert_eq!(caps.len(), cfg.k as usize, "one capacity per part");
    assert!(cfg.k >= 1, "k must be positive");
    assert!(caps.iter().all(|&c| c > 0), "capacities must be positive");

    let vwgt: Vec<i64> = bytes
        .iter()
        .map(|&b| b.min(i64::MAX as u64) as i64)
        .collect();
    let bg = Csr {
        xadj: g.xadj.clone(),
        adjncy: g.adjncy.clone(),
        adjwgt: g.adjwgt.clone(),
        vwgt,
    };

    if cfg.k == 1 || n == 0 {
        return Partition {
            parts: vec![0; n],
            k: cfg.k,
            edgecut: 0,
        };
    }
    if cfg.k as usize >= n {
        // One vertex per part, mirroring `part_graph`'s degenerate branch.
        let parts: Vec<u32> = (0..n as u32).collect();
        let edgecut = edge_cut(&bg, &parts);
        return Partition {
            parts,
            k: cfg.k,
            edgecut,
        };
    }

    let eff = effective_caps(&bg, caps, cfg);
    let mut parts = if n <= DIRECT_MAX_N && (n as u64) * (cfg.k as u64) <= DIRECT_MAX_WORK {
        part_graph(&bg, cfg).parts
    } else {
        multilevel_kway(&bg, cfg, &eff)
    };
    capacity_sweeps(&bg, &mut parts, cfg, &eff);
    // The balance-tightened budget can stall the repair with a *hard*
    // capacity still violated (every other part's slack eaten by the
    // tighter balance target, so no move is admissible). A second sweep
    // against the hard caps alone has the full declared headroom to work
    // with and restores the documented guarantee.
    let hard: Vec<i64> = caps
        .iter()
        .map(|&c| c.min(i64::MAX as u64) as i64)
        .collect();
    if hard != eff {
        capacity_sweeps(&bg, &mut parts, cfg, &hard);
    }
    let edgecut = edge_cut(&bg, &parts);
    Partition {
        parts,
        k: cfg.k,
        edgecut,
    }
}

/// Per-part byte budget the refinement enforces: the hard capacity,
/// tightened by the balance target when that is feasible. With unbounded
/// caps this reduces to the classic `total/k · imbalance` cap; with tight
/// heterogeneous caps the capacities win.
fn effective_caps(g: &Csr, caps: &[u64], cfg: &PartitionConfig) -> Vec<i64> {
    let total = g.total_vwgt();
    let k = cfg.k as i64;
    let balance_cap = ((total as f64 / k as f64) * cfg.imbalance).ceil() as i64;
    let hard: Vec<i64> = caps
        .iter()
        .map(|&c| c.min(i64::MAX as u64) as i64)
        .collect();
    let tight: Vec<i64> = hard.iter().map(|&c| c.min(balance_cap)).collect();
    if tight.iter().map(|&c| c.min(total)).sum::<i64>() >= total {
        tight
    } else {
        // The balance target is infeasible under these capacities; fall
        // back to the hard caps alone.
        hard
    }
}

/// Heavy-edge-matching contraction without the hashing of
/// [`crate::coarsen::contract`]: every coarse vertex has at most two fine
/// members, so one dense scratch row accumulates its coarse neighbour
/// weights in O(degree).
fn contract_fast(g: &Csr, mate: &[u32]) -> CoarseLevel {
    let n = g.n();
    let mut map = vec![u32::MAX; n];
    let mut members: Vec<(u32, u32)> = Vec::with_capacity(n);
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        let m = mate[v as usize];
        let c = members.len() as u32;
        map[v as usize] = c;
        map[m as usize] = c; // m == v for unmatched vertices
        members.push((v, m));
    }
    let nc = members.len();
    let mut vwgt = vec![0i64; nc];
    for v in 0..n {
        vwgt[map[v] as usize] += g.vwgt[v];
    }
    let mut xadj = Vec::with_capacity(nc + 1);
    let mut adjncy: Vec<u32> = Vec::new();
    let mut adjwgt: Vec<i64> = Vec::new();
    let mut slot = vec![usize::MAX; nc];
    xadj.push(0usize);
    for (c, &(a, b)) in members.iter().enumerate() {
        let row_start = adjncy.len();
        let fine = if a == b { [a, a] } else { [a, b] };
        let take = if a == b { 1 } else { 2 };
        for &v in fine.iter().take(take) {
            for (u, w) in g.neighbors(v) {
                let cu = map[u as usize];
                if cu as usize == c {
                    continue; // intra-pair edge vanishes
                }
                if slot[cu as usize] == usize::MAX {
                    slot[cu as usize] = adjncy.len();
                    adjncy.push(cu);
                    adjwgt.push(w);
                } else {
                    adjwgt[slot[cu as usize]] += w;
                }
            }
        }
        for &cu in &adjncy[row_start..] {
            slot[cu as usize] = usize::MAX;
        }
        xadj.push(adjncy.len());
    }
    CoarseLevel {
        graph: Csr {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        },
        map,
    }
}

/// Coarsen until `target_n` vertices remain or matching stalls, using the
/// hash-free contraction. Levels are returned finest-first, like
/// [`crate::coarsen::coarsen_to`].
fn coarsen_fast(g: &Csr, target_n: usize, rng: &mut StdRng) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current = g.clone();
    while current.n() > target_n {
        let mate = heavy_edge_matching(&current, rng);
        let level = contract_fast(&current, &mate);
        if level.graph.n() as f64 > current.n() as f64 * 0.95 {
            break;
        }
        current = level.graph.clone();
        levels.push(level);
    }
    levels
}

/// Multilevel k-way partitioning with k-independent refinement — the
/// cluster-scale path.
fn multilevel_kway(bg: &Csr, cfg: &PartitionConfig, eff: &[i64]) -> Vec<u32> {
    let k = cfg.k;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let target = (k as usize * 4).max(256);
    let levels = coarsen_fast(bg, target, &mut rng);
    let coarsest: &Csr = levels.last().map(|l| &l.graph).unwrap_or(bg);

    // Initial assignment: a weight-balanced contiguous sweep over coarse
    // ids (coarse ids inherit fine-vertex order, so contiguous id ranges
    // stay spatially local). Guarantees every part non-empty.
    let nc = coarsest.n();
    let total = coarsest.total_vwgt();
    let mut parts = vec![0u32; nc];
    let mut p = 0u32;
    let mut acc = 0i64;
    for (v, part) in parts.iter_mut().enumerate() {
        *part = p.min(k - 1);
        acc += coarsest.vwgt[v];
        let remaining_vertices = (nc - v - 1) as u32;
        if p + 1 < k
            && remaining_vertices >= k - p - 1
            && acc as i128 * k as i128 >= total as i128 * (p as i128 + 1)
        {
            p += 1;
        }
    }
    refine_capacitated(coarsest, &mut parts, k, eff, cfg.refine_passes);

    // Uncoarsen: project through each level's map, refine at each scale
    // (each level's `map` projects onto the graph it contracted — the
    // previous level's coarse graph, or the input graph at the finest).
    let mut current = parts;
    for idx in (0..levels.len()).rev() {
        let level = &levels[idx];
        let finer_n = level.map.len();
        let mut finer = vec![0u32; finer_n];
        for (v, part) in finer.iter_mut().enumerate() {
            *part = current[level.map[v] as usize];
        }
        current = finer;
        let fine_graph: &Csr = if idx == 0 { bg } else { &levels[idx - 1].graph };
        refine_capacitated(fine_graph, &mut current, k, eff, 2);
    }
    current
}

/// Boundary refinement whose per-vertex cost depends on the vertex degree,
/// not on k: connection weights are accumulated only for the parts a
/// vertex actually touches. Moves require positive gain and a destination
/// under its effective cap; a vertex in an over-cap part may also take a
/// zero/negative-gain move to shed load (the repair case).
fn refine_capacitated(g: &Csr, parts: &mut [u32], k: u32, eff: &[i64], passes: u32) {
    let n = g.n();
    if n == 0 || k < 2 {
        return;
    }
    let mut loads = part_weights(g, parts, k);
    let mut conn = vec![0i64; k as usize];
    let mut touched: Vec<u32> = Vec::with_capacity(32);
    for _ in 0..passes {
        let mut moved = false;
        for v in 0..n as u32 {
            let own = parts[v as usize];
            touched.clear();
            let mut is_boundary = false;
            for (u, w) in g.neighbors(v) {
                let pu = parts[u as usize];
                if conn[pu as usize] == 0 {
                    touched.push(pu);
                }
                conn[pu as usize] += w;
                if pu != own {
                    is_boundary = true;
                }
            }
            if is_boundary {
                let vw = g.vwgt[v as usize];
                let own_conn = conn[own as usize];
                let over_cap = loads[own as usize] > eff[own as usize];
                let mut best: Option<(u32, i64)> = None;
                for &p in &touched {
                    if p == own {
                        continue;
                    }
                    let gain = conn[p as usize] - own_conn;
                    let fits = loads[p as usize] + vw <= eff[p as usize];
                    let admissible = if over_cap {
                        // shedding load beats preserving cut, but never
                        // into another over-cap part
                        fits
                    } else {
                        gain > 0 && fits
                    };
                    if admissible && best.is_none_or(|(_, bg_)| gain > bg_) {
                        best = Some((p, gain));
                    }
                }
                if let Some((p, _)) = best {
                    loads[own as usize] -= vw;
                    loads[p as usize] += vw;
                    parts[v as usize] = p;
                    moved = true;
                }
            }
            for &t in &touched {
                conn[t as usize] = 0;
            }
        }
        if !moved {
            break;
        }
    }
}

/// Final capacity repair: while some part exceeds its effective cap, sweep
/// its boundary vertices out to the adjacent part with the best
/// (gain, headroom) — or, when no adjacent part has room, to the globally
/// emptiest part — until every part fits or a sweep makes no progress.
fn capacity_sweeps(g: &Csr, parts: &mut [u32], cfg: &PartitionConfig, eff: &[i64]) {
    let k = cfg.k;
    let n = g.n();
    if n == 0 || k < 2 {
        return;
    }
    let mut loads = part_weights(g, parts, k);
    let over = |loads: &[i64]| (0..k as usize).any(|p| loads[p] > eff[p]);
    if !over(&loads) {
        return;
    }
    let mut conn = vec![0i64; k as usize];
    let mut touched: Vec<u32> = Vec::with_capacity(32);
    for _round in 0..8 {
        let mut moved = false;
        for v in 0..n as u32 {
            let own = parts[v as usize];
            if loads[own as usize] <= eff[own as usize] {
                continue;
            }
            let vw = g.vwgt[v as usize];
            touched.clear();
            for (u, w) in g.neighbors(v) {
                let pu = parts[u as usize];
                if conn[pu as usize] == 0 {
                    touched.push(pu);
                }
                conn[pu as usize] += w;
            }
            let own_conn = conn[own as usize];
            let mut best: Option<(u32, i64)> = None;
            for &p in &touched {
                if p != own && loads[p as usize] + vw <= eff[p as usize] {
                    let gain = conn[p as usize] - own_conn;
                    if best.is_none_or(|(_, bg_)| gain > bg_) {
                        best = Some((p, gain));
                    }
                }
            }
            if best.is_none() {
                // teleport to the emptiest part that can absorb it
                let mut slot: Option<(u32, i64)> = None;
                for p in 0..k {
                    if p == own {
                        continue;
                    }
                    let headroom = eff[p as usize] - loads[p as usize];
                    if headroom >= vw && slot.is_none_or(|(_, h)| headroom > h) {
                        slot = Some((p, headroom));
                    }
                }
                best = slot.map(|(p, _)| (p, 0));
            }
            for &t in &touched {
                conn[t as usize] = 0;
            }
            if let Some((p, _)) = best {
                loads[own as usize] -= vw;
                loads[p as usize] += vw;
                parts[v as usize] = p;
                moved = true;
            }
        }
        if !moved || !over(&loads) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::balance;

    fn grid_graph(w: usize, h: usize) -> Csr {
        let id = |x: usize, y: usize| (y * w + x) as u32;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y), 1));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1), 1));
                }
            }
        }
        Csr::from_edges(w * h, &edges, vec![1; w * h])
    }

    fn loads(bytes: &[u64], parts: &[u32], k: u32) -> Vec<u64> {
        let mut l = vec![0u64; k as usize];
        for (v, &p) in parts.iter().enumerate() {
            l[p as usize] += bytes[v];
        }
        l
    }

    #[test]
    fn unbounded_caps_give_balanced_partition() {
        let g = grid_graph(16, 16);
        let bytes = vec![8u64; 256];
        for k in [2u32, 4, 8] {
            let caps = vec![u64::MAX; k as usize];
            let p = repartition_capacitated(&g, &bytes, &caps, &PartitionConfig::new(k));
            assert!(p.parts.iter().all(|&x| x < k));
            for part in 0..k {
                assert!(p.parts.contains(&part), "part {part} empty for k={k}");
            }
            let bg = Csr {
                vwgt: bytes.iter().map(|&b| b as i64).collect(),
                ..g.clone()
            };
            let b = balance(&bg, &p.parts, k);
            assert!(b <= 1.25, "k={k}: balance {b}");
            assert_eq!(p.edgecut, edge_cut(&bg, &p.parts));
        }
    }

    #[test]
    fn tight_caps_are_respected() {
        // 8x8 grid of 10-byte vertices (640 total) over 4 parts where part
        // 0 can hold barely one quarter and part 3 has slack.
        let g = grid_graph(8, 8);
        let bytes = vec![10u64; 64];
        let caps = [170u64, 200, 200, 400];
        let p = repartition_capacitated(&g, &bytes, &caps, &PartitionConfig::new(4));
        let l = loads(&bytes, &p.parts, 4);
        for part in 0..4 {
            assert!(
                l[part] <= caps[part],
                "part {part} holds {} > cap {}",
                l[part],
                caps[part]
            );
        }
    }

    #[test]
    fn lopsided_caps_push_load_to_the_big_rank() {
        // One rank with 4x the capacity of the others must not overflow
        // the small ones even though a balanced split would.
        let g = grid_graph(10, 10);
        let bytes = vec![4u64; 100];
        let caps = [80u64, 80, 80, 400];
        let p = repartition_capacitated(&g, &bytes, &caps, &PartitionConfig::new(4));
        let l = loads(&bytes, &p.parts, 4);
        for part in 0..4 {
            assert!(
                l[part] <= caps[part],
                "part {part}: {} > {}",
                l[part],
                caps[part]
            );
        }
        assert!(
            l[3] >= 160,
            "big rank should absorb the overflow, got {l:?}"
        );
    }

    #[test]
    fn degenerate_k_matches_part_graph_conventions() {
        let g = grid_graph(2, 2);
        let bytes = vec![1u64; 4];
        let p1 = repartition_capacitated(&g, &bytes, &[u64::MAX], &PartitionConfig::new(1));
        assert!(p1.parts.iter().all(|&x| x == 0));
        let p16 = repartition_capacitated(&g, &bytes, &[u64::MAX; 16], &PartitionConfig::new(16));
        let mut seen = std::collections::HashSet::new();
        for &x in &p16.parts {
            assert!(seen.insert(x));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid_graph(12, 12);
        let bytes: Vec<u64> = (0..144).map(|v| 4 + (v % 7) as u64).collect();
        let caps = vec![u64::MAX; 6];
        let cfg = PartitionConfig::new(6).with_seed(42);
        let a = repartition_capacitated(&g, &bytes, &caps, &cfg);
        let b = repartition_capacitated(&g, &bytes, &caps, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn multilevel_path_scales_past_the_direct_threshold() {
        // 100x100 = 10k vertices at k=64 exceeds DIRECT_MAX_N, forcing the
        // coarsen/kway path; every part must land non-empty and balanced.
        let g = grid_graph(100, 100);
        let bytes = vec![8u64; 10_000];
        let k = 64u32;
        let caps = vec![u64::MAX; k as usize];
        let p = repartition_capacitated(&g, &bytes, &caps, &PartitionConfig::new(k));
        let l = loads(&bytes, &p.parts, k);
        assert!(l.iter().all(|&x| x > 0), "empty part: {l:?}");
        let max = *l.iter().max().unwrap();
        let total: u64 = l.iter().sum();
        assert!(
            (max as f64) * (k as f64) / (total as f64) <= 1.3,
            "imbalance too high: max {max} of {total}"
        );
        let bg = Csr {
            vwgt: bytes.iter().map(|&b| b as i64).collect(),
            ..g.clone()
        };
        // sanity: far better than a random-quality cut
        assert!(edge_cut(&bg, &p.parts) < bg.adjwgt.iter().sum::<i64>() / 4);
    }

    #[test]
    fn contract_fast_matches_contract() {
        use crate::coarsen::contract;
        let g = grid_graph(9, 7);
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mate = heavy_edge_matching(&g, &mut rng);
            let slow = contract(&g, &mate);
            let fast = contract_fast(&g, &mate);
            assert_eq!(fast.map, slow.map);
            assert_eq!(fast.graph.vwgt, slow.graph.vwgt);
            fast.graph.validate().unwrap();
            // same edges and weights regardless of row ordering
            for v in 0..fast.graph.n() as u32 {
                let mut a: Vec<_> = fast.graph.neighbors(v).collect();
                let mut b: Vec<_> = slow.graph.neighbors(v).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "vertex {v} seed {seed}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacities must be positive")]
    fn zero_capacity_rejected() {
        let g = grid_graph(2, 2);
        repartition_capacitated(&g, &[1; 4], &[0, 10], &PartitionConfig::new(2));
    }
}
