//! # nlheat-partition — multilevel k-way mesh/graph partitioner
//!
//! METIS substitute for the reproduction of Gadikar, Diehl & Jha 2021. The
//! paper calls `METIS_PartMeshDual` to distribute sub-domains across
//! computational nodes with minimum data exchange (§6.2); this crate
//! implements the same algorithm family from scratch:
//!
//! 1. **Coarsening** by heavy-edge matching ([`coarsen`]),
//! 2. **Initial partitioning** by greedy graph growing ([`bisect`]),
//! 3. **Uncoarsening with FM-style boundary refinement** ([`bisect`],
//!    [`kway`]),
//! 4. **k-way partitions** via recursive bisection plus a direct k-way
//!    refinement pass ([`kway`]).
//!
//! [`dual::sd_dual_graph`] builds the dual graph of the SD grid (vertices =
//! SDs, edges = shared boundaries weighted by communication volume), and
//! [`part_mesh_dual`] is the `METIS_PartMeshDual` replacement used by the
//! distributed solver. [`baseline`] provides the naive strip/block
//! partitioners the ablation study compares against.
//!
//! [`sdgraph::SdGraph`] is the runtime-facing sibling of the dual graph:
//! SD adjacency derived from the halo plans (corner and multi-ring
//! neighbours included) with edge weights in ghost wire bytes per
//! timestep, so the load balancer can price the *recurring* traffic of an
//! ownership — its edge cut over this graph — and not just one-off
//! migration bytes.

pub mod baseline;
pub mod bisect;
pub mod coarsen;
pub mod dual;
pub mod graph;
pub mod kway;
pub mod metrics;
pub mod repart;
pub mod sdgraph;

pub use baseline::{block_partition, strip_partition};
pub use dual::{part_mesh_dual, sd_dual_graph};
pub use graph::Csr;
pub use kway::{part_graph, Partition, PartitionConfig};
pub use metrics::{balance, edge_cut};
pub use repart::repartition_capacitated;
pub use sdgraph::{patch_wire_bytes, SdGraph};
