//! Compressed-sparse-row graphs with vertex and edge weights.

/// An undirected graph in CSR form (every edge stored in both directions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// Adjacency offsets, length `n + 1`.
    pub xadj: Vec<usize>,
    /// Flattened neighbour lists.
    pub adjncy: Vec<u32>,
    /// Edge weights parallel to `adjncy`.
    pub adjwgt: Vec<i64>,
    /// Vertex weights, length `n`.
    pub vwgt: Vec<i64>,
}

impl Csr {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Neighbours of `v` with edge weights.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, i64)> + '_ {
        let lo = self.xadj[v as usize];
        let hi = self.xadj[v as usize + 1];
        self.adjncy[lo..hi]
            .iter()
            .copied()
            .zip(self.adjwgt[lo..hi].iter().copied())
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Sum of all vertex weights.
    pub fn total_vwgt(&self) -> i64 {
        self.vwgt.iter().sum()
    }

    /// Build from an undirected edge list `(u, v, weight)`; duplicate edges
    /// have their weights summed, self-loops are rejected.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn from_edges(n: usize, edges: &[(u32, u32, i64)], vwgt: Vec<i64>) -> Self {
        assert_eq!(vwgt.len(), n);
        use std::collections::HashMap;
        let mut adj: Vec<HashMap<u32, i64>> = vec![HashMap::new(); n];
        for &(u, v, w) in edges {
            assert_ne!(u, v, "self-loop on vertex {u}");
            assert!((u as usize) < n && (v as usize) < n, "edge out of range");
            *adj[u as usize].entry(v).or_insert(0) += w;
            *adj[v as usize].entry(u).or_insert(0) += w;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        xadj.push(0);
        for nbrs in adj {
            let mut sorted: Vec<_> = nbrs.into_iter().collect();
            sorted.sort_unstable();
            for (v, w) in sorted {
                adjncy.push(v);
                adjwgt.push(w);
            }
            xadj.push(adjncy.len());
        }
        Csr {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }

    /// The subgraph induced by `ids` (edges leaving the set are dropped).
    /// Returns the subgraph and the local→global vertex map (= `ids`).
    pub fn induced_subgraph(&self, ids: &[u32]) -> (Csr, Vec<u32>) {
        let mut global_to_local = std::collections::HashMap::with_capacity(ids.len());
        for (local, &g) in ids.iter().enumerate() {
            global_to_local.insert(g, local as u32);
        }
        let mut xadj = Vec::with_capacity(ids.len() + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        let mut vwgt = Vec::with_capacity(ids.len());
        xadj.push(0);
        for &g in ids {
            for (u, w) in self.neighbors(g) {
                if let Some(&lu) = global_to_local.get(&u) {
                    adjncy.push(lu);
                    adjwgt.push(w);
                }
            }
            xadj.push(adjncy.len());
            vwgt.push(self.vwgt[g as usize]);
        }
        (
            Csr {
                xadj,
                adjncy,
                adjwgt,
                vwgt,
            },
            ids.to_vec(),
        )
    }

    /// Consistency check: symmetric adjacency, sorted offsets, matching
    /// array lengths. Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        if self.xadj.len() != n + 1 {
            return Err(format!("xadj length {} != n+1", self.xadj.len()));
        }
        if self.adjncy.len() != self.adjwgt.len() {
            return Err("adjncy/adjwgt length mismatch".into());
        }
        if *self.xadj.last().unwrap() != self.adjncy.len() {
            return Err("xadj tail does not cover adjncy".into());
        }
        for v in 0..n as u32 {
            for (u, w) in self.neighbors(v) {
                if u as usize >= n {
                    return Err(format!("edge ({v},{u}) out of range"));
                }
                if u == v {
                    return Err(format!("self loop at {v}"));
                }
                let back = self.neighbors(u).find(|&(x, _)| x == v).map(|(_, bw)| bw);
                if back != Some(w) {
                    return Err(format!("asymmetric edge ({v},{u})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Csr {
        // 0 - 1 - 2
        Csr::from_edges(3, &[(0, 1, 2), (1, 2, 5)], vec![1, 1, 1])
    }

    #[test]
    fn from_edges_builds_symmetric_csr() {
        let g = path3();
        assert_eq!(g.n(), 3);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(1, 2)]);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_edges_merge_weights() {
        let g = Csr::from_edges(2, &[(0, 1, 2), (1, 0, 3)], vec![1, 1]);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(1, 5)]);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Csr::from_edges(2, &[(0, 0, 1)], vec![1, 1]);
    }

    #[test]
    fn induced_subgraph_drops_external_edges() {
        // square 0-1-2-3-0
        let g = Csr::from_edges(
            4,
            &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)],
            vec![1, 2, 3, 4],
        );
        let (sub, map) = g.induced_subgraph(&[1, 2]);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.vwgt, vec![2, 3]);
        assert_eq!(sub.n_edges(), 1);
        assert_eq!(map, vec![1, 2]);
        sub.validate().unwrap();
    }

    #[test]
    fn total_vwgt_sums() {
        let g = Csr::from_edges(3, &[(0, 1, 1)], vec![5, 7, 9]);
        assert_eq!(g.total_vwgt(), 21);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = Csr::from_edges(3, &[], vec![1, 1, 1]);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.degree(0), 0);
        g.validate().unwrap();
    }
}
