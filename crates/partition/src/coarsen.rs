//! Graph coarsening by heavy-edge matching.
//!
//! The first phase of the multilevel scheme: repeatedly collapse a maximal
//! matching that prefers heavy edges, so that the coarse graph preserves the
//! cut structure of the fine graph (Karypis & Kumar 1998, the METIS paper
//! the reproduction target cites as [7]).

use crate::graph::Csr;
use rand::seq::SliceRandom;
use rand::Rng;

/// A fine→coarse projection produced by one coarsening step.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The contracted graph.
    pub graph: Csr,
    /// For every fine vertex, its coarse vertex id.
    pub map: Vec<u32>,
}

/// Compute a heavy-edge matching. Returns `mate[v]`: the partner of `v`, or
/// `v` itself when unmatched.
pub fn heavy_edge_matching(g: &Csr, rng: &mut impl Rng) -> Vec<u32> {
    let n = g.n();
    let mut mate: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    for &v in &order {
        if matched[v as usize] {
            continue;
        }
        let mut best: Option<(u32, i64)> = None;
        for (u, w) in g.neighbors(v) {
            if !matched[u as usize] && best.is_none_or(|(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        if let Some((u, _)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
            matched[v as usize] = true;
            matched[u as usize] = true;
        }
    }
    mate
}

/// Contract a matching into a coarse graph. Matched pairs merge vertex
/// weights; parallel edges merge edge weights; intra-pair edges vanish.
pub fn contract(g: &Csr, mate: &[u32]) -> CoarseLevel {
    let n = g.n();
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        let m = mate[v as usize];
        map[v as usize] = next;
        map[m as usize] = next; // m == v for unmatched vertices
        next += 1;
    }
    let nc = next as usize;
    let mut vwgt = vec![0i64; nc];
    for v in 0..n {
        vwgt[map[v] as usize] += g.vwgt[v];
    }
    // Accumulate coarse edges.
    let mut edges = std::collections::HashMap::new();
    for v in 0..n as u32 {
        let cv = map[v as usize];
        for (u, w) in g.neighbors(v) {
            let cu = map[u as usize];
            if cu != cv {
                let key = (cv.min(cu), cv.max(cu));
                *edges.entry(key).or_insert(0i64) += w;
            }
        }
    }
    // Each undirected fine edge visited twice -> halve.
    let edge_list: Vec<(u32, u32, i64)> =
        edges.into_iter().map(|((a, b), w)| (a, b, w / 2)).collect();
    CoarseLevel {
        graph: Csr::from_edges(nc, &edge_list, vwgt),
        map,
    }
}

/// Coarsen until at most `target_n` vertices remain or progress stalls.
/// Returns the chain of levels, finest first.
pub fn coarsen_to(g: &Csr, target_n: usize, rng: &mut impl Rng) -> Vec<CoarseLevel> {
    let mut levels = Vec::new();
    let mut current = g.clone();
    while current.n() > target_n {
        let mate = heavy_edge_matching(&current, rng);
        let level = contract(&current, &mate);
        // Stall guard: matching too sparse to make progress.
        if level.graph.n() as f64 > current.n() as f64 * 0.95 {
            break;
        }
        current = level.graph.clone();
        levels.push(level);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_graph(w: usize, h: usize) -> Csr {
        let id = |x: usize, y: usize| (y * w + x) as u32;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y), 1));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1), 1));
                }
            }
        }
        Csr::from_edges(w * h, &edges, vec![1; w * h])
    }

    #[test]
    fn matching_is_consistent() {
        let g = grid_graph(6, 6);
        let mut rng = StdRng::seed_from_u64(1);
        let mate = heavy_edge_matching(&g, &mut rng);
        for v in 0..g.n() as u32 {
            let m = mate[v as usize];
            assert_eq!(mate[m as usize], v, "mate relation must be symmetric");
        }
    }

    #[test]
    fn matching_is_maximal() {
        // No two adjacent vertices may both stay unmatched.
        let g = grid_graph(7, 5);
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mate = heavy_edge_matching(&g, &mut rng);
            for v in 0..g.n() as u32 {
                if mate[v as usize] != v {
                    continue;
                }
                for (u, _) in g.neighbors(v) {
                    assert_ne!(
                        mate[u as usize], u,
                        "unmatched neighbours {v},{u} (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn matching_picks_heaviest_available_neighbor() {
        // Star: center 0 with leaves 1 (w=1) and 2 (w=100). Whenever the
        // center ends up matched, it must be matched through an edge that
        // was the heaviest available at its turn — so (0,1) may only occur
        // if 1 was visited before 0.
        let g = Csr::from_edges(3, &[(0, 1, 1), (0, 2, 100)], vec![1, 1, 1]);
        let mut saw_heavy = false;
        for seed in 0..32 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mate = heavy_edge_matching(&g, &mut rng);
            // symmetric + maximal sanity
            for v in 0..3u32 {
                assert_eq!(mate[mate[v as usize] as usize], v);
            }
            if mate[0] == 2 {
                saw_heavy = true;
            }
        }
        assert!(saw_heavy, "heavy edge never chosen across 32 seeds");
    }

    #[test]
    fn contract_preserves_total_vertex_weight() {
        let g = grid_graph(8, 8);
        let mut rng = StdRng::seed_from_u64(7);
        let mate = heavy_edge_matching(&g, &mut rng);
        let level = contract(&g, &mate);
        assert_eq!(level.graph.total_vwgt(), g.total_vwgt());
        level.graph.validate().unwrap();
        assert!(level.graph.n() < g.n());
        assert!(level.graph.n() >= g.n() / 2);
    }

    #[test]
    fn contract_map_is_total_and_dense() {
        let g = grid_graph(5, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let level = contract(&g, &heavy_edge_matching(&g, &mut rng));
        let nc = level.graph.n() as u32;
        for &c in &level.map {
            assert!(c < nc);
        }
        // every coarse id used
        let mut used = vec![false; nc as usize];
        for &c in &level.map {
            used[c as usize] = true;
        }
        assert!(used.iter().all(|&b| b));
    }

    #[test]
    fn coarsen_to_reaches_target() {
        let g = grid_graph(16, 16);
        let mut rng = StdRng::seed_from_u64(11);
        let levels = coarsen_to(&g, 32, &mut rng);
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().graph;
        assert!(coarsest.n() <= 64, "close to target, got {}", coarsest.n());
        assert_eq!(coarsest.total_vwgt(), g.total_vwgt());
    }

    #[test]
    fn coarsen_trivial_graph_stalls_gracefully() {
        let g = Csr::from_edges(2, &[(0, 1, 1)], vec![1, 1]);
        let mut rng = StdRng::seed_from_u64(0);
        let levels = coarsen_to(&g, 1, &mut rng);
        assert!(levels.len() <= 1);
    }
}
