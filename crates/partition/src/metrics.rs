//! Partition quality metrics.

use crate::graph::Csr;

/// Total weight of edges crossing part boundaries (each edge counted once).
pub fn edge_cut(g: &Csr, parts: &[u32]) -> i64 {
    let mut cut = 0;
    for v in 0..g.n() as u32 {
        for (u, w) in g.neighbors(v) {
            if u > v && parts[u as usize] != parts[v as usize] {
                cut += w;
            }
        }
    }
    cut
}

/// Load-balance factor: `max_p weight(p) · k / total` — 1.0 is perfect,
/// larger means the heaviest part is overloaded by that factor.
pub fn balance(g: &Csr, parts: &[u32], k: u32) -> f64 {
    let mut weights = vec![0i64; k as usize];
    for v in 0..g.n() {
        weights[parts[v] as usize] += g.vwgt[v];
    }
    let max = weights.iter().copied().max().unwrap_or(0);
    let total = g.total_vwgt();
    if total == 0 {
        return 1.0;
    }
    max as f64 * k as f64 / total as f64
}

/// Per-part vertex-weight totals.
pub fn part_weights(g: &Csr, parts: &[u32], k: u32) -> Vec<i64> {
    let mut weights = vec![0i64; k as usize];
    for v in 0..g.n() {
        weights[parts[v] as usize] += g.vwgt[v];
    }
    weights
}

/// Number of connected components of part `p` under the graph adjacency —
/// 1 for a contiguous part.
pub fn part_components(g: &Csr, parts: &[u32], p: u32) -> usize {
    let members: Vec<u32> = (0..g.n() as u32)
        .filter(|&v| parts[v as usize] == p)
        .collect();
    if members.is_empty() {
        return 0;
    }
    let in_part: std::collections::HashSet<u32> = members.iter().copied().collect();
    let mut seen = std::collections::HashSet::new();
    let mut components = 0;
    for &start in &members {
        if seen.contains(&start) {
            continue;
        }
        components += 1;
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(v) = stack.pop() {
            for (u, _) in g.neighbors(v) {
                if in_part.contains(&u) && seen.insert(u) {
                    stack.push(u);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Csr {
        Csr::from_edges(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 4)], vec![1, 2, 3, 4])
    }

    #[test]
    fn edge_cut_counts_cross_edges_once() {
        let g = path4();
        let parts = vec![0, 0, 1, 1];
        assert_eq!(edge_cut(&g, &parts), 3);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 2 + 3 + 4);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn balance_perfect_and_skewed() {
        let g = path4(); // weights 1,2,3,4 total 10
        assert!((balance(&g, &[0, 0, 1, 1], 2) - 7.0 * 2.0 / 10.0).abs() < 1e-12);
        assert!((balance(&g, &[0, 1, 0, 1], 2) - 6.0 * 2.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn part_weights_sum_to_total() {
        let g = path4();
        let w = part_weights(&g, &[0, 1, 1, 2], 3);
        assert_eq!(w, vec![1, 5, 4]);
        assert_eq!(w.iter().sum::<i64>(), g.total_vwgt());
    }

    #[test]
    fn components_detect_fragmentation() {
        let g = path4();
        assert_eq!(part_components(&g, &[0, 0, 1, 0], 0), 2);
        assert_eq!(part_components(&g, &[0, 0, 1, 0], 1), 1);
        assert_eq!(part_components(&g, &[1, 1, 1, 1], 0), 0);
    }
}
