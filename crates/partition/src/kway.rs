//! k-way partitioning by recursive bisection plus direct k-way refinement.

use crate::bisect::multilevel_bisection;
use crate::graph::Csr;
use crate::metrics::{edge_cut, part_weights};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Partitioner configuration.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Number of parts.
    pub k: u32,
    /// Allowed imbalance: heaviest part ≤ `imbalance · total/k`
    /// (METIS' default ballpark of 1.03–1.05).
    pub imbalance: f64,
    /// RNG seed — same seed, same partition.
    pub seed: u64,
    /// Direct k-way refinement passes after recursive bisection.
    pub refine_passes: u32,
}

impl PartitionConfig {
    /// Defaults mirroring METIS: 5% imbalance tolerance.
    pub fn new(k: u32) -> Self {
        PartitionConfig {
            k,
            imbalance: 1.05,
            seed: 0x5eed,
            refine_passes: 8,
        }
    }

    /// Same configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A k-way partition of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Part id per vertex (`< k`).
    pub parts: Vec<u32>,
    /// Number of parts.
    pub k: u32,
    /// Edge-cut weight of this assignment.
    pub edgecut: i64,
}

/// Partition `g` into `cfg.k` parts (the `METIS_PartGraphKway` analogue).
pub fn part_graph(g: &Csr, cfg: &PartitionConfig) -> Partition {
    assert!(cfg.k >= 1, "k must be positive");
    let n = g.n();
    let mut parts = vec![0u32; n];
    if cfg.k == 1 || n == 0 {
        return Partition {
            parts,
            k: cfg.k,
            edgecut: 0,
        };
    }
    if cfg.k as usize >= n {
        // Degenerate: one vertex per part (some parts may stay empty).
        for (v, p) in parts.iter_mut().enumerate() {
            *p = v as u32;
        }
        let edgecut = edge_cut(g, &parts);
        return Partition {
            parts,
            k: cfg.k,
            edgecut,
        };
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let ids: Vec<u32> = (0..n as u32).collect();
    rec_bisect(g, &ids, cfg.k, 0, &mut parts, &mut rng);
    refine_kway(g, &mut parts, cfg);
    let edgecut = edge_cut(g, &parts);
    Partition {
        parts,
        k: cfg.k,
        edgecut,
    }
}

fn rec_bisect(root: &Csr, ids: &[u32], k: u32, base: u32, parts: &mut [u32], rng: &mut StdRng) {
    if k == 1 {
        for &v in ids {
            parts[v as usize] = base;
        }
        return;
    }
    let (sub, map) = root.induced_subgraph(ids);
    let k0 = k / 2;
    let k1 = k - k0;
    let frac0 = k0 as f64 / k as f64;
    let two_way = multilevel_bisection(&sub, frac0, rng);
    let mut ids0 = Vec::new();
    let mut ids1 = Vec::new();
    for (local, &side) in two_way.iter().enumerate() {
        if side == 0 {
            ids0.push(map[local]);
        } else {
            ids1.push(map[local]);
        }
    }
    // Guard: a degenerate bisection (everything on one side) would recurse
    // forever; peel one vertex over.
    if ids0.is_empty() {
        ids0.push(ids1.pop().expect("nonempty input"));
    } else if ids1.is_empty() {
        ids1.push(ids0.pop().expect("nonempty input"));
    }
    rec_bisect(root, &ids0, k0, base, parts, rng);
    rec_bisect(root, &ids1, k1, base + k0, parts, rng);
}

/// Direct k-way boundary refinement: greedily move boundary vertices to the
/// adjacent part with the largest positive gain, subject to the imbalance
/// cap.
pub fn refine_kway(g: &Csr, parts: &mut [u32], cfg: &PartitionConfig) {
    let k = cfg.k;
    let n = g.n();
    if k < 2 || n == 0 {
        return;
    }
    let total = g.total_vwgt();
    let target = total as f64 / k as f64;
    let cap = (target * cfg.imbalance).ceil() as i64;
    let mut weights = part_weights(g, parts, k);
    let mut conn = vec![0i64; k as usize];
    for _pass in 0..cfg.refine_passes {
        let mut moved = false;
        for v in 0..n as u32 {
            let own = parts[v as usize];
            // connection weight to each adjacent part
            conn.iter_mut().for_each(|c| *c = 0);
            let mut is_boundary = false;
            for (u, w) in g.neighbors(v) {
                let pu = parts[u as usize];
                conn[pu as usize] += w;
                if pu != own {
                    is_boundary = true;
                }
            }
            if !is_boundary {
                continue;
            }
            let vw = g.vwgt[v as usize];
            let own_conn = conn[own as usize];
            let mut best: Option<(u32, i64)> = None;
            for p in 0..k {
                if p == own || conn[p as usize] == 0 {
                    continue;
                }
                let gain = conn[p as usize] - own_conn;
                if gain > 0
                    && weights[p as usize] + vw <= cap
                    && best.is_none_or(|(_, bg)| gain > bg)
                {
                    best = Some((p, gain));
                }
            }
            if let Some((p, _)) = best {
                weights[own as usize] -= vw;
                weights[p as usize] += vw;
                parts[v as usize] = p;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{balance, part_components};

    fn grid_graph(w: usize, h: usize) -> Csr {
        let id = |x: usize, y: usize| (y * w + x) as u32;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y), 1));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1), 1));
                }
            }
        }
        Csr::from_edges(w * h, &edges, vec![1; w * h])
    }

    #[test]
    fn k1_is_trivial() {
        let g = grid_graph(4, 4);
        let p = part_graph(&g, &PartitionConfig::new(1));
        assert!(p.parts.iter().all(|&x| x == 0));
        assert_eq!(p.edgecut, 0);
    }

    #[test]
    fn every_vertex_gets_a_valid_part() {
        let g = grid_graph(8, 8);
        for k in [2u32, 3, 4, 5, 7, 8] {
            let p = part_graph(&g, &PartitionConfig::new(k));
            assert!(p.parts.iter().all(|&x| x < k), "k={k}");
            // all parts non-empty for k << n
            for part in 0..k {
                assert!(p.parts.contains(&part), "part {part} empty for k={k}");
            }
        }
    }

    #[test]
    fn balance_within_tolerance() {
        let g = grid_graph(16, 16);
        for k in [2u32, 4, 8] {
            let cfg = PartitionConfig::new(k);
            let p = part_graph(&g, &cfg);
            let b = balance(&g, &p.parts, k);
            assert!(
                b <= cfg.imbalance + 0.15,
                "k={k}: balance {b} exceeds tolerance"
            );
        }
    }

    #[test]
    fn four_way_grid_cut_is_reasonable() {
        // A 16x16 grid split into 4 quadrants cuts 32 unit edges; allow
        // some slack over the optimum.
        let g = grid_graph(16, 16);
        let p = part_graph(&g, &PartitionConfig::new(4));
        assert!(p.edgecut <= 48, "cut {} too far from optimal 32", p.edgecut);
    }

    #[test]
    fn parts_are_mostly_contiguous_on_grids() {
        let g = grid_graph(12, 12);
        let p = part_graph(&g, &PartitionConfig::new(4));
        for part in 0..4 {
            let comps = part_components(&g, &p.parts, part);
            assert!(comps <= 2, "part {part} fragmented into {comps} components");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid_graph(10, 10);
        let a = part_graph(&g, &PartitionConfig::new(4).with_seed(7));
        let b = part_graph(&g, &PartitionConfig::new(4).with_seed(7));
        assert_eq!(a, b);
    }

    #[test]
    fn k_exceeding_n_spreads_vertices() {
        let g = grid_graph(2, 2);
        let p = part_graph(&g, &PartitionConfig::new(16));
        let mut seen = std::collections::HashSet::new();
        for &x in &p.parts {
            assert!(seen.insert(x), "parts must be distinct when k ≥ n");
        }
    }

    #[test]
    fn edgecut_matches_metric() {
        let g = grid_graph(9, 9);
        let p = part_graph(&g, &PartitionConfig::new(3));
        assert_eq!(p.edgecut, edge_cut(&g, &p.parts));
    }

    #[test]
    fn nonuniform_vertex_weights_balanced() {
        // heavy stripe on the left: partitioner must not put all heavy
        // vertices in one part
        let w = 8;
        let id = |x: usize, y: usize| (y * w + x) as u32;
        let mut edges = Vec::new();
        for y in 0..w {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y), 1));
                }
                if y + 1 < w {
                    edges.push((id(x, y), id(x, y + 1), 1));
                }
            }
        }
        let vwgt: Vec<i64> = (0..w * w).map(|v| if v % w < 2 { 10 } else { 1 }).collect();
        let g = Csr::from_edges(w * w, &edges, vwgt);
        let p = part_graph(&g, &PartitionConfig::new(2));
        let b = balance(&g, &p.parts, 2);
        assert!(b < 1.3, "weighted balance {b}");
    }
}
