//! Naive partitioners used as ablation baselines.
//!
//! The paper credits METIS partitioning with reduced data exchange (§6.2);
//! ablation A1 quantifies that against the obvious alternatives: row-major
//! strips and rectangular blocks.

use nlheat_mesh::SdGrid;

/// Row-major strip partition: SD `i` (row-major) goes to part
/// `⌊i·k/count⌋`. Balanced by construction, but strips have long
/// boundaries.
pub fn strip_partition(sds: &SdGrid, k: u32) -> Vec<u32> {
    let n = sds.count();
    (0..n)
        .map(|i| ((i as u64 * k as u64) / n as u64) as u32)
        .collect()
}

/// Block partition into a `kx × ky` grid of rectangles (`k = kx·ky`).
pub fn block_partition(sds: &SdGrid, kx: u32, ky: u32) -> Vec<u32> {
    let mut parts = vec![0u32; sds.count()];
    for id in sds.ids() {
        let (sx, sy) = sds.coords(id);
        let px = (sx as u64 * kx as u64 / sds.nsx as u64) as u32;
        let py = (sy as u64 * ky as u64 / sds.nsy as u64) as u32;
        parts[id as usize] = py * kx + px;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::sd_dual_graph;
    use crate::metrics::{balance, edge_cut};

    #[test]
    fn strip_parts_are_balanced() {
        let sds = SdGrid::new(8, 8, 10);
        let parts = strip_partition(&sds, 4);
        let g = sd_dual_graph(&sds);
        assert!((balance(&g, &parts, 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strip_parts_are_contiguous_in_row_major() {
        let sds = SdGrid::new(4, 4, 5);
        let parts = strip_partition(&sds, 2);
        assert_eq!(parts[..8], vec![0; 8][..]);
        assert_eq!(parts[8..], vec![1; 8][..]);
    }

    #[test]
    fn block_partition_quadrants() {
        let sds = SdGrid::new(4, 4, 5);
        let parts = block_partition(&sds, 2, 2);
        assert_eq!(parts[sds.id(0, 0) as usize], 0);
        assert_eq!(parts[sds.id(3, 0) as usize], 1);
        assert_eq!(parts[sds.id(0, 3) as usize], 2);
        assert_eq!(parts[sds.id(3, 3) as usize], 3);
    }

    #[test]
    fn blocks_cut_less_than_strips_for_square_counts() {
        // For k=4 on a square SD grid, quadrants have shorter total
        // boundary than four horizontal strips.
        let sds = SdGrid::new(16, 16, 10);
        let g = sd_dual_graph(&sds);
        let strips = strip_partition(&sds, 4);
        let blocks = block_partition(&sds, 2, 2);
        assert!(edge_cut(&g, &blocks) < edge_cut(&g, &strips));
    }
}
