//! The SD adjacency / halo-volume graph — the steady-state ghost-traffic
//! view of the decomposition.
//!
//! [`crate::dual::sd_dual_graph`] answers the *partitioner's* question
//! ("which SDs share a boundary, and how long is it?") with 4-adjacency and
//! boundary lengths in cells. The load balancer needs the *runtime's*
//! version of the same graph: which SDs actually exchange ghost messages
//! each timestep, and how many wire bytes each exchange carries. For a
//! nonlocal model those are not the same graph — the halo reaches corner
//! neighbours and, when ε exceeds the SD size, SDs several rings away — so
//! [`SdGraph`] derives its edges from the [`HaloPlan`]s both execution
//! substrates already build, with edge weights equal to the wire bytes the
//! simulator charges per ghost message (`cells · 8 + 24` framing, summed
//! over both directions of the exchange).
//!
//! The graph is stored as the same [`Csr`] the partitioner uses, so the
//! ownership edge cut — the recurring ghost bytes a given SD→node
//! assignment ships every timestep — is literally
//! [`crate::metrics::edge_cut`] over this graph, not a reimplementation.

use crate::graph::Csr;
use crate::metrics::edge_cut;
use nlheat_mesh::{build_halo_plan, HaloPlan, SdGrid, SdId};

/// Wire bytes of one ghost message carrying `cells` cells — the
/// 8-byte-f64 payload plus 24 bytes of framing, the planning-grade wire
/// estimate shared by the discrete-event simulator's per-patch charge and
/// the balancer's `sd_bytes` tile size, kept here so the graph's edge
/// weights and the simulated traffic can never disagree. (The real
/// fabric's parcels additionally carry the codec's 8-byte length prefix,
/// so this estimate undercounts a real ghost message by one word — an
/// approximation, constant per message, that cancels in every edge-cut
/// *delta* the planner prices.)
pub fn patch_wire_bytes(cells: i64) -> u64 {
    (cells * 8 + 24) as u64
}

/// Per-SD neighbour lists with halo-exchange volumes: one vertex per SD
/// (weight = its cell count), one undirected edge per pair of SDs that
/// trade ghost patches (weight = total wire bytes per timestep, both
/// directions summed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdGraph {
    csr: Csr,
}

impl SdGraph {
    /// Build from the halo plans both substrates already construct
    /// (`plans[i]` must be the plan of SD `i`).
    ///
    /// # Panics
    /// Panics when `plans` does not cover the grid.
    pub fn from_plans(sds: &SdGrid, plans: &[HaloPlan]) -> Self {
        assert_eq!(plans.len(), sds.count(), "one halo plan per SD");
        let mut edges: Vec<(SdId, SdId, i64)> = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            assert_eq!(plan.sd as usize, i, "plans must be in SD id order");
            for (_, src, patch) in plan.sd_patches() {
                // One directed ghost message src → plan.sd per timestep;
                // `Csr::from_edges` sums duplicates, so the symmetric
                // message of the reverse plan lands on the same
                // undirected edge.
                edges.push((plan.sd, src, patch_wire_bytes(patch.dst_rect.area()) as i64));
            }
        }
        let vwgt = vec![sds.cells_per_sd() as i64; sds.count()];
        SdGraph {
            csr: Csr::from_edges(sds.count(), &edges, vwgt),
        }
    }

    /// Build from grid geometry alone (constructs the halo plans
    /// internally — callers that already hold plans should prefer
    /// [`SdGraph::from_plans`]).
    pub fn build(sds: &SdGrid, halo: i64) -> Self {
        let plans: Vec<HaloPlan> = sds.ids().map(|id| build_halo_plan(sds, halo, id)).collect();
        SdGraph::from_plans(sds, &plans)
    }

    /// Number of SDs (vertices).
    pub fn n_sds(&self) -> usize {
        self.csr.n()
    }

    /// The underlying CSR graph (for [`edge_cut`]-style metrics).
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Ghost-exchange partners of `sd` with the wire bytes per timestep
    /// traded over each edge (both directions).
    pub fn neighbours(&self, sd: SdId) -> impl Iterator<Item = (SdId, u64)> + '_ {
        self.csr.neighbors(sd).map(|(nb, w)| (nb, w as u64))
    }

    /// Total ghost bytes per timestep if every exchange were remote — the
    /// upper bound of [`SdGraph::cut_bytes`].
    pub fn total_ghost_bytes(&self) -> u64 {
        (self.csr.adjwgt.iter().sum::<i64>() / 2) as u64
    }

    /// Resident memory footprint of `sd` on its owner, in bytes: the tile
    /// payload (8-byte f64 per cell) plus the ghost buffers it keeps for
    /// its halo exchanges (the incident edge weights — both directions,
    /// since a rank buffers what it receives and stages what it sends).
    /// This is what a destination's `memory_bytes` capacity actually pays
    /// to host the SD, the memory object of memory-aware balancing
    /// (cf. Lifflander et al., arXiv:2404.16793).
    pub fn resident_bytes(&self, sd: SdId) -> u64 {
        let tile = (self.csr.vwgt[sd as usize] * 8) as u64;
        tile + self.csr.neighbors(sd).map(|(_, w)| w as u64).sum::<u64>()
    }

    /// [`SdGraph::resident_bytes`] for every SD, indexed by [`SdId`] —
    /// the per-SD footprint table memory-aware planners balance against.
    pub fn footprints(&self) -> Vec<u64> {
        (0..self.n_sds() as SdId)
            .map(|sd| self.resident_bytes(sd))
            .collect()
    }

    /// Ghost bytes per timestep crossing node boundaries under `owners` —
    /// the ownership edge cut, computed by the partitioner's own
    /// [`edge_cut`] so planner and partitioner agree by construction.
    pub fn cut_bytes(&self, owners: &[u32]) -> u64 {
        edge_cut(&self.csr, owners) as u64
    }

    /// [`SdGraph::cut_bytes`] restricted to cut edges whose owner pair
    /// satisfies `pred` — e.g. "crosses a rack boundary" when `pred`
    /// resolves link classes.
    pub fn cut_bytes_where(&self, owners: &[u32], mut pred: impl FnMut(u32, u32) -> bool) -> u64 {
        let mut cut = 0u64;
        for v in 0..self.csr.n() as u32 {
            for (u, w) in self.csr.neighbors(v) {
                if u > v
                    && owners[u as usize] != owners[v as usize]
                    && pred(owners[v as usize], owners[u as usize])
                {
                    cut += w as u64;
                }
            }
        }
        cut
    }

    /// Change of [`SdGraph::cut_bytes`] if `sd` were reassigned from its
    /// current owner to `to` (positive: the move adds recurring ghost
    /// traffic). Exactly `cut_bytes(after) - cut_bytes(before)`, computed
    /// from `sd`'s neighbour list alone.
    pub fn cut_delta_bytes(&self, owners: &[u32], sd: SdId, to: u32) -> i64 {
        let from = owners[sd as usize];
        if from == to {
            return 0;
        }
        let mut delta = 0i64;
        for (nb, w) in self.csr.neighbors(sd) {
            let o = owners[nb as usize];
            if o == from {
                delta += w; // was internal, becomes cut
            } else if o == to {
                delta -= w; // was cut, becomes internal
            }
            // any other owner: cut before and after
        }
        delta
    }

    /// [`SdGraph::cut_bytes`] after applying a whole batch of
    /// reassignments at once (later entries for the same SD win, exactly
    /// as if the moves were applied in order). The per-move
    /// [`SdGraph::cut_delta_bytes`] path re-reads every touched
    /// neighbour list *per move* against a mutating owner table; this
    /// scans each edge incident to a reassigned SD exactly once, so the
    /// repartition differ can price an arbitrarily large diff in one
    /// pass.
    pub fn cut_after_reassign(&self, owners: &[u32], moves: &[(SdId, u32)]) -> u64 {
        if moves.is_empty() {
            return self.cut_bytes(owners);
        }
        let mut after: Vec<u32> = owners.to_vec();
        let mut touched = vec![false; owners.len()];
        for &(sd, to) in moves {
            after[sd as usize] = to;
            touched[sd as usize] = true;
        }
        let mut cut = self.cut_bytes(owners) as i64;
        for v in 0..self.csr.n() as u32 {
            if !touched[v as usize] {
                continue;
            }
            for (u, w) in self.csr.neighbors(v) {
                // Edges between two touched SDs are seen from both
                // endpoints — only account them from the smaller id.
                if touched[u as usize] && u < v {
                    continue;
                }
                let was_cut = owners[v as usize] != owners[u as usize];
                let is_cut = after[v as usize] != after[u as usize];
                cut += w * (is_cut as i64 - was_cut as i64);
            }
        }
        cut as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_match_halo_reach() {
        // halo < sd: the centre SD of a 3x3 grid trades with all 8
        // surrounding SDs (corners included — unlike the 4-adjacent dual).
        let sds = SdGrid::new(3, 3, 10);
        let g = SdGraph::build(&sds, 3);
        assert_eq!(g.n_sds(), 9);
        assert_eq!(g.neighbours(sds.id(1, 1)).count(), 8);
        // multi-ring halo: reach extends two SDs away
        let sds5 = SdGrid::new(5, 5, 5);
        let wide = SdGraph::build(&sds5, 8);
        assert_eq!(wide.neighbours(sds5.id(2, 2)).count(), 24);
        wide.csr().validate().unwrap();
    }

    #[test]
    fn edge_weight_sums_both_directions() {
        // Two 7-cell SDs side by side, halo 1: each direction ships a
        // 7-cell patch, so the undirected edge carries both messages.
        let sds = SdGrid::new(2, 1, 7);
        let g = SdGraph::build(&sds, 1);
        let (nb, w) = g.neighbours(0).next().unwrap();
        assert_eq!(nb, 1);
        assert_eq!(w, 2 * patch_wire_bytes(7));
        assert_eq!(g.total_ghost_bytes(), 2 * patch_wire_bytes(7));
    }

    #[test]
    fn resident_bytes_sum_tile_and_ghost_buffers() {
        // Two 7x7-cell SDs side by side, halo 1: each keeps its 49-cell
        // tile plus one exchange's buffers (send + receive = the
        // undirected edge weight).
        let sds = SdGrid::new(2, 1, 7);
        let g = SdGraph::build(&sds, 1);
        let edge = 2 * patch_wire_bytes(7);
        let tile = sds.cells_per_sd() as u64 * 8;
        assert_eq!(g.resident_bytes(0), tile + edge);
        assert_eq!(g.footprints(), vec![tile + edge; 2]);
        // an interior SD of a 3x3 grid buffers all 8 exchanges
        let sds3 = SdGrid::new(3, 3, 10);
        let g3 = SdGraph::build(&sds3, 3);
        let centre = sds3.id(1, 1);
        let incident: u64 = g3.neighbours(centre).map(|(_, w)| w).sum();
        assert_eq!(g3.resident_bytes(centre), 100 * 8 + incident);
        assert!(g3.resident_bytes(centre) > g3.resident_bytes(sds3.id(0, 0)));
    }

    #[test]
    fn from_plans_matches_build() {
        let sds = SdGrid::new(4, 3, 5);
        let plans: Vec<HaloPlan> = sds.ids().map(|id| build_halo_plan(&sds, 7, id)).collect();
        assert_eq!(SdGraph::from_plans(&sds, &plans), SdGraph::build(&sds, 7));
    }

    /// The satellite acceptance test: the SD-graph cut equals
    /// `partition::metrics::edge_cut` on the rect fixtures AND equals a
    /// brute-force count of the per-message wire bytes that actually cross
    /// owners — the quantity the simulator charges every timestep.
    #[test]
    fn cut_bytes_matches_edge_cut_and_message_count() {
        for (nsx, nsy, sd, halo) in [(4usize, 4usize, 4usize, 2i64), (5, 3, 5, 8), (6, 6, 2, 1)] {
            let sds = SdGrid::new(nsx, nsy, sd);
            let plans: Vec<HaloPlan> = sds
                .ids()
                .map(|id| build_halo_plan(&sds, halo, id))
                .collect();
            let g = SdGraph::from_plans(&sds, &plans);
            for pattern in 0..4u32 {
                let owners: Vec<u32> = sds
                    .ids()
                    .map(|id| {
                        let (sx, sy) = sds.coords(id);
                        ((sx as u32 + pattern) / 2 + (sy as u32 / 2)) % 3
                    })
                    .collect();
                // brute force: every ghost message whose endpoints differ
                let mut brute = 0u64;
                for plan in &plans {
                    for (_, src, patch) in plan.sd_patches() {
                        if owners[src as usize] != owners[plan.sd as usize] {
                            brute += patch_wire_bytes(patch.dst_rect.area());
                        }
                    }
                }
                assert_eq!(g.cut_bytes(&owners), brute, "pattern {pattern}");
                assert_eq!(
                    g.cut_bytes(&owners),
                    edge_cut(g.csr(), &owners) as u64,
                    "cut must be the partitioner's own edge_cut"
                );
                assert_eq!(
                    g.cut_bytes_where(&owners, |_, _| true),
                    g.cut_bytes(&owners)
                );
            }
        }
    }

    #[test]
    fn cut_delta_matches_recomputed_cut() {
        let sds = SdGrid::new(5, 4, 4);
        let g = SdGraph::build(&sds, 2);
        let owners: Vec<u32> = sds.ids().map(|id| id % 3).collect();
        for sd in sds.ids() {
            for to in 0..3u32 {
                let mut after = owners.clone();
                after[sd as usize] = to;
                let expect = g.cut_bytes(&after) as i64 - g.cut_bytes(&owners) as i64;
                assert_eq!(
                    g.cut_delta_bytes(&owners, sd, to),
                    expect,
                    "sd {sd} -> node {to}"
                );
            }
        }
    }

    /// The batch differ path must agree exactly with the sequential
    /// per-move path (`cut_delta_bytes` + apply, move by move), including
    /// repeated reassignments of the same SD where the last write wins.
    #[test]
    fn cut_after_reassign_matches_per_move_path() {
        let sds = SdGrid::new(5, 4, 4);
        let g = SdGraph::build(&sds, 2);
        let owners: Vec<u32> = sds.ids().map(|id| id % 3).collect();
        let batches: Vec<Vec<(SdId, u32)>> = vec![
            vec![],
            vec![(0, 2)],
            vec![(0, 1), (1, 1), (7, 0), (13, 2)],
            // every SD reassigned — a full-replan-sized diff
            sds.ids().map(|id| (id, (id + 1) % 3)).collect(),
            // same SD moved twice: last write wins
            vec![(4, 1), (4, 2), (5, 0)],
            // no-op moves mixed in
            vec![(2, owners[2]), (9, 0)],
        ];
        for moves in &batches {
            let mut seq = owners.clone();
            let mut cut = g.cut_bytes(&seq) as i64;
            for &(sd, to) in moves {
                cut += g.cut_delta_bytes(&seq, sd, to);
                seq[sd as usize] = to;
            }
            assert_eq!(
                g.cut_after_reassign(&owners, moves),
                cut as u64,
                "batch {moves:?}"
            );
            assert_eq!(g.cut_after_reassign(&owners, moves), g.cut_bytes(&seq));
        }
    }

    #[test]
    fn cut_bytes_where_filters_pairs() {
        // 2x1 SDs split over 2 nodes: the whole cut is the (0,1) pair.
        let sds = SdGrid::new(2, 1, 6);
        let g = SdGraph::build(&sds, 1);
        let owners = [0u32, 1];
        assert!(g.cut_bytes(&owners) > 0);
        assert_eq!(
            g.cut_bytes_where(&owners, |a, b| a.min(b) == 0 && a.max(b) == 1),
            g.cut_bytes(&owners)
        );
        assert_eq!(g.cut_bytes_where(&owners, |_, _| false), 0);
        // single owner: nothing crosses
        assert_eq!(g.cut_bytes(&[0, 0]), 0);
    }
}
