//! Dual graph of the SD grid and the `METIS_PartMeshDual` replacement.
//!
//! The paper partitions the *coarse* mesh of sub-domains, not the fine
//! grid (§8.3 lists the advantages: fast partitioning, small I/O, SDs
//! further distributable to threads). The dual graph has one vertex per SD
//! (weight = its DP count, i.e. its compute load) and an edge between
//! edge-adjacent SDs (weight = the shared boundary length in cells, i.e.
//! proportional to the ghost-exchange volume).

use crate::graph::Csr;
use crate::kway::{part_graph, Partition, PartitionConfig};
use nlheat_mesh::SdGrid;

/// Build the dual graph of an SD grid (4-adjacency).
pub fn sd_dual_graph(sds: &SdGrid) -> Csr {
    let n = sds.count();
    let mut edges = Vec::new();
    for id in sds.ids() {
        let (sx, sy) = sds.coords(id);
        // right and top neighbours only — each undirected edge once
        if sds.in_bounds(sx + 1, sy) {
            edges.push((id, sds.id(sx + 1, sy), sds.sd));
        }
        if sds.in_bounds(sx, sy + 1) {
            edges.push((id, sds.id(sx, sy + 1), sds.sd));
        }
    }
    let vwgt = vec![sds.cells_per_sd() as i64; n];
    Csr::from_edges(n, &edges, vwgt)
}

/// Distribute the SDs of `sds` over `k` computational nodes with minimum
/// data exchange — the `METIS_PartMeshDual` call of §6.2.
pub fn part_mesh_dual(sds: &SdGrid, k: u32, seed: u64) -> Partition {
    let dual = sd_dual_graph(sds);
    part_graph(&dual, &PartitionConfig::new(k).with_seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{balance, part_components};

    #[test]
    fn dual_graph_shape() {
        let sds = SdGrid::new(5, 5, 4);
        let g = sd_dual_graph(&sds);
        assert_eq!(g.n(), 25);
        // 2*5*4 = 40 undirected edges in a 5x5 grid graph
        assert_eq!(g.n_edges(), 40);
        assert_eq!(g.vwgt[0], 16);
        g.validate().unwrap();
    }

    #[test]
    fn dual_edge_weight_is_boundary_length() {
        let sds = SdGrid::new(2, 1, 7);
        let g = sd_dual_graph(&sds);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(1, 7)]);
    }

    #[test]
    fn paper_figure2_configuration() {
        // Fig. 2: 25 SDs over 4 nodes. Check balance and contiguity.
        let sds = SdGrid::new(5, 5, 4);
        let p = part_mesh_dual(&sds, 4, 1);
        let g = sd_dual_graph(&sds);
        assert!(
            balance(&g, &p.parts, 4) <= 1.35,
            "25 SDs over 4 nodes: 7/6.25"
        );
        for part in 0..4 {
            assert!(part_components(&g, &p.parts, part) <= 1);
        }
    }

    #[test]
    fn paper_figure13_configuration() {
        // Fig. 13: 16x16 SDs of 50x50 cells over up to 16 nodes.
        let sds = SdGrid::new(16, 16, 50);
        for k in [2u32, 4, 8, 16] {
            let p = part_mesh_dual(&sds, k, 1);
            let g = sd_dual_graph(&sds);
            let b = balance(&g, &p.parts, k);
            assert!(b <= 1.2, "k={k} balance {b}");
        }
    }

    #[test]
    fn two_nodes_split_roughly_half() {
        let sds = SdGrid::new(4, 4, 50);
        let p = part_mesh_dual(&sds, 2, 0);
        let count0 = p.parts.iter().filter(|&&x| x == 0).count();
        assert_eq!(count0, 8, "4x4 SDs over 2 nodes must split 8/8");
    }
}
