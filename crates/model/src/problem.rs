//! Problem specification shared by every solver and benchmark.
//!
//! Bundles the knobs the paper's experiments vary — mesh size, horizon
//! multiplier (ε = m·h), conductivity, timestep count — and derives the
//! grid, kernel and stable timestep from them.

use crate::influence::Influence;
use crate::kernel::NonlocalKernel;
use crate::manufactured::Manufactured;
use nlheat_mesh::Grid;
use std::sync::Arc;

/// Declarative description of one nonlocal heat problem.
#[derive(Debug, Clone, Copy)]
pub struct ProblemSpec {
    /// Interior cells per side (square mesh).
    pub n: usize,
    /// Horizon multiplier: ε = `eps_mult`·h (the paper uses 8).
    pub eps_mult: f64,
    /// Heat conductivity k.
    pub conductivity: f64,
    /// Influence function J.
    pub influence: Influence,
    /// Fraction of the forward-Euler stability bound to use for Δt.
    pub safety: f64,
}

impl ProblemSpec {
    /// A square problem with the paper's defaults (k = 1, J = 1,
    /// Δt at half the stability bound).
    pub fn square(n: usize, eps_mult: f64) -> Self {
        ProblemSpec {
            n,
            eps_mult,
            conductivity: 1.0,
            influence: Influence::Constant,
            safety: 0.5,
        }
    }

    /// The paper's evaluation configuration: ε = 8h.
    pub fn paper(n: usize) -> Self {
        ProblemSpec::square(n, 8.0)
    }

    /// Materialize grid, kernel, timestep and manufactured fields.
    pub fn build(&self) -> ProblemParts {
        let grid = Grid::square(self.n, self.eps_mult);
        let kernel = NonlocalKernel::new(&grid, self.conductivity, self.influence);
        let dt = kernel.stable_dt(self.safety);
        let manufactured = Arc::new(Manufactured::new(&grid, &kernel));
        ProblemParts {
            spec: *self,
            grid,
            kernel,
            dt,
            manufactured,
        }
    }
}

/// Everything derived from a [`ProblemSpec`].
#[derive(Clone)]
pub struct ProblemParts {
    pub spec: ProblemSpec,
    pub grid: Grid,
    pub kernel: NonlocalKernel,
    /// Stable forward-Euler timestep.
    pub dt: f64,
    pub manufactured: Arc<Manufactured>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_consistent_parts() {
        let parts = ProblemSpec::square(32, 4.0).build();
        assert_eq!(parts.grid.nx, 32);
        assert_eq!(parts.grid.halo, 4);
        assert!(parts.dt > 0.0);
        assert!(parts.dt <= parts.kernel.stable_dt(1.0));
    }

    #[test]
    fn paper_spec_uses_eps_8h() {
        let spec = ProblemSpec::paper(400);
        assert_eq!(spec.eps_mult, 8.0);
        let parts = spec.build();
        assert_eq!(parts.grid.halo, 8);
    }

    #[test]
    fn dt_shrinks_with_mesh_refinement() {
        // ε = m·h so c·Σw ≈ 8k/ε² grows as h² shrinks -> dt ∝ h².
        let coarse = ProblemSpec::square(16, 4.0).build();
        let fine = ProblemSpec::square(32, 4.0).build();
        let ratio = coarse.dt / fine.dt;
        assert!(
            (3.0..5.0).contains(&ratio),
            "expected dt ratio ≈ 4, got {ratio}"
        );
    }
}
