//! The discrete nonlocal operator (paper eq. 5).
//!
//! For every DP i the forward-Euler update is
//!
//! ```text
//! û_i^{k+1} = û_i^k + Δt [ b(t_k, x_i) + c Σ_j J(|x_j−x_i|/ε) (û_j − û_i) V_j ]
//! ```
//!
//! [`NonlocalKernel`] pre-pairs each stencil offset with its quadrature
//! weight `J(r/ε)·h²` and applies the update over a rectangular region of a
//! [`Tile`] — the same code path serves the serial solver (one tile = the
//! whole grid), the shared-memory solver and the distributed solver.

use crate::influence::{conductivity_constant_2d, Influence};
use nlheat_mesh::{Grid, Rect, Stencil, Tile};
use std::sync::Arc;

/// External heat source b(t, x_i) addressed by global cell index.
pub type SourceFn = Arc<dyn Fn(f64, i64, i64) -> f64 + Send + Sync>;

/// A source that is identically zero.
pub fn zero_source() -> SourceFn {
    Arc::new(|_, _, _| 0.0)
}

/// Stencil + weights + conductivity for one grid resolution.
#[derive(Debug, Clone)]
pub struct NonlocalKernel {
    /// Geometric ε-ball stencil.
    pub stencil: Stencil,
    /// Quadrature weight `J(|x_j−x_i|/ε)·V_j` per stencil offset.
    pub weights: Vec<f64>,
    /// Conductivity constant c (paper eq. 2).
    pub c: f64,
    /// Σ_j weights — governs the forward-Euler stability bound.
    pub sum_w: f64,
    /// Grid spacing (cached for coordinate-free callers).
    pub h: f64,
}

impl NonlocalKernel {
    /// Build the kernel for `grid` with conductivity `k` and influence `j`.
    pub fn new(grid: &Grid, k: f64, j: Influence) -> Self {
        let stencil = Stencil::build(grid.h, grid.eps);
        let vol = grid.cell_volume();
        let weights: Vec<f64> = stencil
            .dists
            .iter()
            // clamped: float noise can push d/eps marginally past 1,
            // which would wrongly zero the outermost ring of weights
            .map(|&d| j.eval((d / grid.eps).min(1.0)) * vol)
            .collect();
        let sum_w = weights.iter().sum();
        NonlocalKernel {
            stencil,
            weights,
            c: conductivity_constant_2d(k, grid.eps, j),
            sum_w,
            h: grid.h,
        }
    }

    /// Largest stable forward-Euler timestep scaled by `safety ∈ (0, 1]`.
    ///
    /// The stiffest mode of `du_i/dt = c Σ w (u_j − u_i)` has rate
    /// `λ ≤ 2·c·Σw`, so Δt ≤ 2/λ = 1/(c·Σw) keeps |1 − Δt·λ| ≤ 1.
    pub fn stable_dt(&self, safety: f64) -> f64 {
        assert!(safety > 0.0 && safety <= 1.0);
        safety / (self.c * self.sum_w)
    }

    /// Storage-index offsets of the stencil for a tile of row stride
    /// `stride` — precompute once per tile shape, reuse across steps.
    pub fn storage_offsets(&self, stride: i64) -> Vec<isize> {
        self.stencil
            .offsets
            .iter()
            .map(|&(di, dj)| (dj * stride + di) as isize)
            .collect()
    }

    /// Precompute the cache-blocked execution plan for a tile of row
    /// stride `stride` — the blocked counterpart of
    /// [`storage_offsets`](Self::storage_offsets); build once per tile
    /// shape, reuse across steps with
    /// [`apply_region_blocked`](Self::apply_region_blocked).
    ///
    /// [`Stencil::build`] emits offsets dj-major with di ascending, so the
    /// ε-disk decomposes into runs of consecutive storage indices (one per
    /// stencil row; the dj = 0 row splits in two around the excluded
    /// center). Each run pairs a contiguous weight slice with a contiguous
    /// span of tile storage — the inner loop streams both.
    pub fn plan(&self, stride: i64) -> KernelPlan {
        let mut runs: Vec<WeightRun> = Vec::new();
        let mut prev: Option<(i64, i64)> = None;
        for (idx, &(di, dj)) in self.stencil.offsets.iter().enumerate() {
            let contiguous = prev == Some((di - 1, dj));
            if contiguous {
                runs.last_mut().unwrap().len += 1;
            } else {
                runs.push(WeightRun {
                    w0: idx,
                    len: 1,
                    off0: (dj * stride + di) as isize,
                });
            }
            prev = Some((di, dj));
        }
        KernelPlan { runs }
    }

    /// Apply one forward-Euler step over `region` (local coordinates of the
    /// tiles, which must share shape). `origin` is the global cell index of
    /// the tiles' local (0,0); `repeats ≥ 1` re-executes the interaction sum
    /// to emulate a slower node (the heterogeneity knob of §7).
    ///
    /// Reads `curr` (interior + halo), writes `next` in `region` only.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_region(
        &self,
        curr: &Tile,
        next: &mut Tile,
        region: &Rect,
        offsets: &[isize],
        origin: (i64, i64),
        t: f64,
        dt: f64,
        source: &SourceFn,
        repeats: u32,
    ) {
        debug_assert_eq!(curr.stride(), next.stride());
        debug_assert!(curr.interior_rect().contains_rect(region));
        debug_assert!(self.stencil.reach <= curr.halo());
        debug_assert_eq!(offsets.len(), self.weights.len());
        let data = curr.data();
        let weights = &self.weights;
        let repeats = repeats.max(1);
        for lj in region.y0..region.y1() {
            let gj = origin.1 + lj;
            for li in region.x0..region.x1() {
                let gi = origin.0 + li;
                let base = curr.storage_index(li, lj);
                let ui = data[base];
                let mut interaction = 0.0;
                for _rep in 0..repeats {
                    let mut acc = 0.0;
                    for (w, off) in weights.iter().zip(offsets) {
                        // In-bounds: region ⊆ interior and |offset| ≤ halo,
                        // so base+off stays inside the padded tile.
                        let uj = data[(base as isize + off) as usize];
                        acc += w * (uj - ui);
                    }
                    // Prevent the optimizer from collapsing the repeats.
                    interaction = std::hint::black_box(acc);
                }
                let rhs = source(t, gi, gj) + self.c * interaction;
                next.set(li, lj, ui + dt * rhs);
            }
        }
    }

    /// Cache-blocked variant of [`apply_region`](Self::apply_region) driven
    /// by a [`KernelPlan`] built for the tiles' stride.
    ///
    /// Bit-identical to `apply_region` with `storage_offsets(stride)`: the
    /// plan's runs cover the stencil offsets in their original order, and
    /// within a run the contiguous weight and field slices are walked in
    /// that same order, so the floating-point accumulation sequence is
    /// unchanged. What changes is the addressing — the inner loop streams
    /// two contiguous slices instead of chasing a per-element offset table,
    /// which lets the compiler vectorize and keeps each stencil row on one
    /// or two cache lines.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_region_blocked(
        &self,
        curr: &Tile,
        next: &mut Tile,
        region: &Rect,
        plan: &KernelPlan,
        origin: (i64, i64),
        t: f64,
        dt: f64,
        source: &SourceFn,
        repeats: u32,
    ) {
        debug_assert_eq!(curr.stride(), next.stride());
        debug_assert_eq!(curr.halo(), next.halo());
        // SAFETY: `next` is exclusively borrowed with geometry matching
        // `curr`, so the single-writer contract of the raw path holds
        // trivially.
        unsafe {
            self.apply_region_blocked_raw(
                curr,
                next.data_mut().as_mut_ptr(),
                region,
                plan,
                origin,
                t,
                dt,
                source,
                repeats,
            );
        }
    }

    /// [`Self::apply_region_blocked`] writing through a raw pointer to the
    /// destination tile's storage — the substrate for intra-step work
    /// stealing, where several pool workers update pairwise-disjoint row
    /// bands of one SD's `next` tile concurrently without a lock around
    /// the compute.
    ///
    /// The per-cell arithmetic (run order, accumulation order, the single
    /// write per cell) is byte-for-byte the safe path's, so any disjoint
    /// decomposition of a region produces a bit-identical tile regardless
    /// of which thread computed which band.
    ///
    /// # Safety
    /// - `next_data` must point to the storage of a live tile with the
    ///   same stride and halo as `curr`, and stay valid for the call.
    /// - Concurrent callers targeting the same tile must cover pairwise
    ///   disjoint regions, and nothing may read the written cells until
    ///   every caller returns.
    /// - `region` must lie within the tile interior (debug-asserted).
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn apply_region_blocked_raw(
        &self,
        curr: &Tile,
        next_data: *mut f64,
        region: &Rect,
        plan: &KernelPlan,
        origin: (i64, i64),
        t: f64,
        dt: f64,
        source: &SourceFn,
        repeats: u32,
    ) {
        debug_assert!(curr.interior_rect().contains_rect(region));
        debug_assert!(self.stencil.reach <= curr.halo());
        debug_assert_eq!(
            plan.runs.iter().map(|r| r.len).sum::<usize>(),
            self.weights.len(),
            "plan does not cover this kernel's stencil"
        );
        let data = curr.data();
        let weights = &self.weights;
        let repeats = repeats.max(1);
        for lj in region.y0..region.y1() {
            let gj = origin.1 + lj;
            for li in region.x0..region.x1() {
                let gi = origin.0 + li;
                let base = curr.storage_index(li, lj) as isize;
                let ui = data[base as usize];
                let mut interaction = 0.0;
                for _rep in 0..repeats {
                    let mut acc = 0.0;
                    for run in &plan.runs {
                        // In-bounds: region ⊆ interior and every offset in
                        // the run satisfies |offset| ≤ halo·(stride+1), so
                        // the whole span lies inside the padded tile.
                        let ws = &weights[run.w0..run.w0 + run.len];
                        let start = (base + run.off0) as usize;
                        let us = &data[start..start + run.len];
                        for (w, uj) in ws.iter().zip(us) {
                            acc += w * (uj - ui);
                        }
                    }
                    // Prevent the optimizer from collapsing the repeats.
                    interaction = std::hint::black_box(acc);
                }
                let rhs = source(t, gi, gj) + self.c * interaction;
                // SAFETY: same index the safe path writes via `Tile::set`;
                // in-bounds because region ⊆ interior (asserted above) and
                // the caller guarantees matching geometry.
                unsafe { *next_data.add(base as usize) = ui + dt * rhs };
            }
        }
    }
}

/// One maximal run of stencil offsets that are consecutive in tile storage:
/// `len` weights starting at `weights[w0]`, paired with the field values at
/// storage offsets `off0, off0+1, …` relative to the center cell.
#[derive(Debug, Clone, Copy)]
struct WeightRun {
    w0: usize,
    len: usize,
    off0: isize,
}

/// Stride-specific execution plan for
/// [`apply_region_blocked`](NonlocalKernel::apply_region_blocked), produced
/// by [`NonlocalKernel::plan`]. Valid only for tiles with the stride it was
/// built for.
#[derive(Debug, Clone)]
pub struct KernelPlan {
    runs: Vec<WeightRun>,
}

impl KernelPlan {
    /// Number of contiguous runs the stencil decomposed into (diagnostic).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_kernel(n: usize, eps_mult: f64) -> (Grid, NonlocalKernel) {
        let grid = Grid::square(n, eps_mult);
        let kernel = NonlocalKernel::new(&grid, 1.0, Influence::Constant);
        (grid, kernel)
    }

    #[test]
    fn weights_are_volume_for_constant_j() {
        let (grid, kernel) = grid_kernel(20, 2.0);
        for &w in &kernel.weights {
            assert!((w - grid.cell_volume()).abs() < 1e-18);
        }
        let expected = kernel.stencil.len() as f64 * grid.cell_volume();
        assert!((kernel.sum_w - expected).abs() < 1e-15);
    }

    #[test]
    fn sum_w_approximates_disk_area() {
        // Σ w ≈ area of the ε-disk = π ε².
        let (grid, kernel) = grid_kernel(400, 8.0);
        let disk = std::f64::consts::PI * grid.eps * grid.eps;
        assert!(
            (kernel.sum_w - disk).abs() / disk < 0.05,
            "sum_w {} vs disk {}",
            kernel.sum_w,
            disk
        );
    }

    #[test]
    fn stable_dt_positive_and_scales() {
        let (_, kernel) = grid_kernel(50, 4.0);
        let dt1 = kernel.stable_dt(1.0);
        let dt_half = kernel.stable_dt(0.5);
        assert!(dt1 > 0.0);
        assert!((dt_half / dt1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_field_stays_constant_without_source() {
        // Σ w (u_j − u_i) = 0 for constant u; with b = 0 nothing changes.
        let (grid, kernel) = grid_kernel(12, 2.0);
        let halo = grid.halo;
        let mut curr = Tile::new(12, halo);
        // constant over interior AND halo so every stencil read sees 5.0
        curr.fill_rect(&curr.padded_rect().clone(), 5.0);
        let mut next = Tile::new(12, halo);
        let offsets = kernel.storage_offsets(curr.stride());
        let region = curr.interior_rect();
        kernel.apply_region(
            &curr,
            &mut next,
            &region,
            &offsets,
            (0, 0),
            0.0,
            kernel.stable_dt(0.5),
            &zero_source(),
            1,
        );
        for (x, y) in region.cells() {
            assert!((next.get(x, y) - 5.0).abs() < 1e-14);
        }
    }

    #[test]
    fn source_only_integration() {
        // u = 0 everywhere, b = 3: after one step u = dt·3.
        let (grid, kernel) = grid_kernel(8, 2.0);
        let curr = Tile::new(8, grid.halo);
        let mut next = Tile::new(8, grid.halo);
        let offsets = kernel.storage_offsets(curr.stride());
        let dt = 0.01;
        let src: SourceFn = Arc::new(|_, _, _| 3.0);
        let region = curr.interior_rect();
        kernel.apply_region(
            &curr,
            &mut next,
            &region,
            &offsets,
            (0, 0),
            0.0,
            dt,
            &src,
            1,
        );
        assert!((next.get(4, 4) - 0.03).abs() < 1e-15);
    }

    #[test]
    fn heat_flows_from_hot_to_cold() {
        let (grid, kernel) = grid_kernel(16, 2.0);
        let mut curr = Tile::new(16, grid.halo);
        // hot square in the middle
        curr.fill_rect(&Rect::new(6, 6, 4, 4), 1.0);
        let mut next = Tile::new(16, grid.halo);
        let offsets = kernel.storage_offsets(curr.stride());
        let dt = kernel.stable_dt(0.5);
        let region = curr.interior_rect();
        kernel.apply_region(
            &curr,
            &mut next,
            &region,
            &offsets,
            (0, 0),
            0.0,
            dt,
            &zero_source(),
            1,
        );
        // center of the hot square cools, cold cell next to it warms
        assert!(next.get(7, 7) < 1.0);
        assert!(next.get(5, 7) > 0.0);
        // far away stays cold
        assert_eq!(next.get(0, 0), 0.0);
    }

    #[test]
    fn repeats_do_not_change_result() {
        let (grid, kernel) = grid_kernel(10, 2.0);
        let mut curr = Tile::new(10, grid.halo);
        for (i, (x, y)) in curr.interior_rect().cells().enumerate() {
            curr.set(x, y, (i % 7) as f64 * 0.1);
        }
        let offsets = kernel.storage_offsets(curr.stride());
        let dt = kernel.stable_dt(0.4);
        let region = curr.interior_rect();
        let mut next1 = Tile::new(10, grid.halo);
        let mut next3 = Tile::new(10, grid.halo);
        kernel.apply_region(
            &curr,
            &mut next1,
            &region,
            &offsets,
            (0, 0),
            0.0,
            dt,
            &zero_source(),
            1,
        );
        kernel.apply_region(
            &curr,
            &mut next3,
            &region,
            &offsets,
            (0, 0),
            0.0,
            dt,
            &zero_source(),
            3,
        );
        for (x, y) in region.cells() {
            assert_eq!(next1.get(x, y), next3.get(x, y));
        }
    }

    #[test]
    fn blocked_matches_scalar_bitwise() {
        // The blocked plan must reproduce the flat scalar loop bit for bit —
        // same accumulation order, only the addressing differs.
        for (n, eps_mult) in [(12usize, 2.0), (30, 4.0), (50, 8.0)] {
            let (grid, kernel) = grid_kernel(n, eps_mult);
            let mut curr = Tile::new(n as i64, grid.halo);
            for (i, (x, y)) in curr.padded_rect().cells().enumerate() {
                // irregular, sign-mixed field exercises cancellation paths
                curr.set(x, y, ((i * 2654435761) % 1000) as f64 * 1e-3 - 0.5);
            }
            let offsets = kernel.storage_offsets(curr.stride());
            let plan = kernel.plan(curr.stride());
            assert!(plan.run_count() < offsets.len(), "runs must coalesce");
            let dt = kernel.stable_dt(0.5);
            let src: SourceFn = Arc::new(|t, gi, gj| t + 0.01 * (gi - gj) as f64);
            for (region, repeats) in [
                (curr.interior_rect(), 1u32),
                (Rect::new(1, 2, n as i64 - 3, n as i64 - 4), 3),
            ] {
                let mut next_s = Tile::new(n as i64, grid.halo);
                let mut next_b = Tile::new(n as i64, grid.halo);
                kernel.apply_region(
                    &curr,
                    &mut next_s,
                    &region,
                    &offsets,
                    (7, -3),
                    0.25,
                    dt,
                    &src,
                    repeats,
                );
                kernel.apply_region_blocked(
                    &curr,
                    &mut next_b,
                    &region,
                    &plan,
                    (7, -3),
                    0.25,
                    dt,
                    &src,
                    repeats,
                );
                for (x, y) in region.cells() {
                    assert_eq!(
                        next_s.get(x, y).to_bits(),
                        next_b.get(x, y).to_bits(),
                        "mismatch at ({x},{y}) n={n} eps_mult={eps_mult}"
                    );
                }
            }
        }
    }

    #[test]
    fn partial_region_leaves_rest_untouched() {
        let (grid, kernel) = grid_kernel(10, 2.0);
        let mut curr = Tile::new(10, grid.halo);
        curr.fill_rect(&Rect::new(0, 0, 10, 10), 1.0);
        let mut next = Tile::new(10, grid.halo);
        let offsets = kernel.storage_offsets(curr.stride());
        let region = Rect::new(0, 0, 5, 10); // left half only
        kernel.apply_region(
            &curr,
            &mut next,
            &region,
            &offsets,
            (0, 0),
            0.0,
            0.001,
            &zero_source(),
            1,
        );
        assert_ne!(next.get(0, 0), 0.0);
        assert_eq!(next.get(7, 5), 0.0, "right half must stay untouched");
    }
}
