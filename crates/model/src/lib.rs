//! # nlheat-model — the nonlocal heat (diffusion) equation
//!
//! Implements §3 of Gadikar, Diehl & Jha 2021: the 2d nonlocal diffusion
//! equation over the unit square (eq. 1), its finite-difference /
//! forward-Euler discretization (eq. 5), the conductivity constant (eq. 2),
//! the manufactured solution used for validation (§3.2, eq. 6), the error
//! norm (eq. 7), and a single-threaded reference solver — the paper's "first
//! implemented a single-threaded version" baseline (§6).
//!
//! ```
//! use nlheat_model::prelude::*;
//!
//! let spec = ProblemSpec::square(16, 2.0);
//! let parts = spec.build();
//! let mut solver = SerialSolver::manufactured(&parts);
//! let err = solver.run_with_error(10);
//! assert!(err.total() < 1e-2);
//! ```

pub mod influence;
pub mod kernel;
pub mod manufactured;
pub mod norms;
pub mod one_dim;
pub mod problem;
pub mod serial;

pub mod prelude {
    pub use crate::influence::{conductivity_constant_1d, conductivity_constant_2d, Influence};
    pub use crate::kernel::{zero_source, KernelPlan, NonlocalKernel, SourceFn};
    pub use crate::manufactured::Manufactured;
    pub use crate::norms::ErrorAccumulator;
    pub use crate::one_dim::{Serial1dSolver, Stencil1d};
    pub use crate::problem::{ProblemParts, ProblemSpec};
    pub use crate::serial::SerialSolver;
}

pub use prelude::*;
