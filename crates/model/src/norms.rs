//! Numerical error norms (paper eq. 7).
//!
//! The per-step error is `e_k = h^d Σ_i |ū(t_k, x_i) − û_i^k|²` and the
//! total error is `e = Σ_k e_k`.

/// Accumulates per-step errors into the total `e = Σ_k e_k`.
#[derive(Debug, Default, Clone)]
pub struct ErrorAccumulator {
    per_step: Vec<f64>,
}

impl ErrorAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one step's `e_k`.
    pub fn push(&mut self, e_k: f64) {
        self.per_step.push(e_k);
    }

    /// Per-step errors in recording order.
    pub fn per_step(&self) -> &[f64] {
        &self.per_step
    }

    /// Total error `e = Σ_k e_k`.
    pub fn total(&self) -> f64 {
        self.per_step.iter().sum()
    }

    /// Largest single-step error.
    pub fn max_step(&self) -> f64 {
        self.per_step.iter().copied().fold(0.0, f64::max)
    }
}

/// One step's error `e_k = h^d Σ |ū − û|²` from (exact, numeric) pairs.
pub fn step_error(h: f64, d: u32, pairs: impl Iterator<Item = (f64, f64)>) -> f64 {
    let sum: f64 = pairs.map(|(a, b)| (a - b) * (a - b)).sum();
    h.powi(d as i32) * sum
}

/// Discrete L² norm `√(h^d Σ v²)` (diagnostic).
pub fn l2_norm(h: f64, d: u32, values: impl Iterator<Item = f64>) -> f64 {
    (h.powi(d as i32) * values.map(|v| v * v).sum::<f64>()).sqrt()
}

/// Max-abs norm (diagnostic).
pub fn max_norm(values: impl Iterator<Item = f64>) -> f64 {
    values.map(f64::abs).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_error_matches_hand_computation() {
        // h=0.5, d=2: e = 0.25 · ((1-0)² + (2-4)²) = 0.25·5
        let e = step_error(0.5, 2, vec![(1.0, 0.0), (2.0, 4.0)].into_iter());
        assert!((e - 1.25).abs() < 1e-15);
    }

    #[test]
    fn step_error_zero_for_exact_match() {
        let e = step_error(0.1, 2, vec![(3.0, 3.0), (-1.0, -1.0)].into_iter());
        assert_eq!(e, 0.0);
    }

    #[test]
    fn accumulator_totals() {
        let mut acc = ErrorAccumulator::new();
        acc.push(1.0);
        acc.push(2.5);
        acc.push(0.5);
        assert_eq!(acc.total(), 4.0);
        assert_eq!(acc.max_step(), 2.5);
        assert_eq!(acc.per_step().len(), 3);
    }

    #[test]
    fn l2_and_max_norms() {
        let vals = [3.0, -4.0];
        assert!((l2_norm(1.0, 0, vals.iter().copied()) - 5.0).abs() < 1e-15);
        assert_eq!(max_norm(vals.iter().copied()), 4.0);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = ErrorAccumulator::new();
        assert_eq!(acc.total(), 0.0);
        assert_eq!(acc.max_step(), 0.0);
    }
}
