//! The 1d nonlocal diffusion equation.
//!
//! The paper derives the conductivity constant for both dimensions
//! (eq. 2); the evaluation uses 2d, but the 1d problem is the standard
//! entry point for nonlocal models (Burch & Lehoucq, the paper's [3]) and
//! exercises the same discrete structure: an ε-ball of interacting
//! neighbours, a zero collar, forward Euler in time, and the manufactured
//! solution `w(t,x) = cos(2πt)·sin(2πx)` on D = [0,1].

use crate::influence::{conductivity_constant_1d, Influence};
use crate::norms::ErrorAccumulator;
use std::f64::consts::PI;

/// Geometric stencil in 1d: offsets `0 < |di| ≤ ε/h`.
#[derive(Debug, Clone)]
pub struct Stencil1d {
    /// Signed offsets, excluding 0.
    pub offsets: Vec<i64>,
    /// Quadrature weight `J(|di|·h/ε)·h` per offset.
    pub weights: Vec<f64>,
    /// Σ weights (stability).
    pub sum_w: f64,
}

impl Stencil1d {
    /// Build for spacing `h`, horizon `eps`, influence `j`.
    pub fn build(h: f64, eps: f64, j: Influence) -> Self {
        assert!(h > 0.0 && eps > 0.0);
        // +1 then distance-filter: guards against eps/h like 0.3/0.1
        // flooring to 2 instead of 3.
        let r = (eps / h).floor() as i64 + 1;
        let mut offsets = Vec::new();
        let mut weights = Vec::new();
        for di in -r..=r {
            if di == 0 {
                continue;
            }
            let dist = h * di.abs() as f64;
            if dist <= eps + 1e-12 {
                offsets.push(di);
                // clamp: float noise can push dist/eps to 1+1e-16,
                // which would wrongly zero the boundary weight
                weights.push(j.eval((dist / eps).min(1.0)) * h);
            }
        }
        let sum_w = weights.iter().sum();
        Stencil1d {
            offsets,
            weights,
            sum_w,
        }
    }
}

/// Single-threaded 1d nonlocal heat solver with the manufactured solution.
pub struct Serial1dSolver {
    n: i64,
    h: f64,
    halo: i64,
    c: f64,
    stencil: Stencil1d,
    /// S(x) = sin(2πx) on the padded line (zero collar).
    s: Vec<f64>,
    /// L_i = Σ_j w_j (S_j − S_i) on the interior.
    l: Vec<f64>,
    curr: Vec<f64>,
    next: Vec<f64>,
    dt: f64,
    step: usize,
}

impl Serial1dSolver {
    /// Square-root analogue of [`crate::problem::ProblemSpec`]: `n` cells
    /// on [0,1], `ε = eps_mult·h`, conductivity `k`, Δt at
    /// `safety/(c·Σw)`.
    pub fn new(n: usize, eps_mult: f64, k: f64, safety: f64) -> Self {
        assert!(n > 0 && eps_mult > 0.0 && safety > 0.0 && safety <= 1.0);
        let h = 1.0 / n as f64;
        let eps = eps_mult * h;
        let j = Influence::Constant;
        let stencil = Stencil1d::build(h, eps, j);
        let c = conductivity_constant_1d(k, eps, j);
        let halo = (eps / h).ceil() as i64;
        let n = n as i64;
        let pad = (n + 2 * halo) as usize;
        let idx = |i: i64| (i + halo) as usize;
        let mut s = vec![0.0; pad];
        for i in 0..n {
            let x = (i as f64 + 0.5) * h;
            s[idx(i)] = (2.0 * PI * x).sin();
        }
        let mut l = vec![0.0; pad];
        for i in 0..n {
            let si = s[idx(i)];
            let mut acc = 0.0;
            for (&di, &w) in stencil.offsets.iter().zip(&stencil.weights) {
                acc += w * (s[idx(i + di)] - si);
            }
            l[idx(i)] = acc;
        }
        let curr = s.clone(); // u₀ = w(0,·) = S
        let next = vec![0.0; pad];
        let dt = safety / (c * stencil.sum_w);
        Serial1dSolver {
            n,
            h,
            halo,
            c,
            stencil,
            s,
            l,
            curr,
            next,
            dt,
            step: 0,
        }
    }

    fn idx(&self, i: i64) -> usize {
        (i + self.halo) as usize
    }

    /// Exact solution `w(t, x_i)`.
    pub fn exact(&self, t: f64, i: i64) -> f64 {
        if i < 0 || i >= self.n {
            return 0.0;
        }
        (2.0 * PI * t).cos() * self.s[self.idx(i)]
    }

    /// Manufactured source at `(t, x_i)` with the solver's own quadrature.
    pub fn source(&self, t: f64, i: i64) -> f64 {
        let phase = 2.0 * PI * t;
        -2.0 * PI * phase.sin() * self.s[self.idx(i)] - self.c * phase.cos() * self.l[self.idx(i)]
    }

    /// Simulated time.
    pub fn time(&self) -> f64 {
        self.step as f64 * self.dt
    }

    /// The timestep in use.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// One forward-Euler step of the discrete system (the 1d form of
    /// eq. 5).
    pub fn step(&mut self) {
        let t = self.time();
        for i in 0..self.n {
            let base = self.idx(i);
            let ui = self.curr[base];
            let mut acc = 0.0;
            for (&di, &w) in self.stencil.offsets.iter().zip(&self.stencil.weights) {
                acc += w * (self.curr[self.idx(i + di)] - ui);
            }
            self.next[base] = ui + self.dt * (self.source(t, i) + self.c * acc);
        }
        std::mem::swap(&mut self.curr, &mut self.next);
        // collar stays zero: `next` was zero outside the interior and the
        // loop never writes there
        self.step += 1;
    }

    /// Run `n` steps recording `e_k = h·Σ|w−û|²` each step.
    pub fn run_with_error(&mut self, n: usize) -> ErrorAccumulator {
        let mut acc = ErrorAccumulator::new();
        for _ in 0..n {
            self.step();
            let t = self.time();
            let sum: f64 = (0..self.n)
                .map(|i| {
                    let d = self.exact(t, i) - self.curr[self.idx(i)];
                    d * d
                })
                .sum();
            acc.push(self.h * sum);
        }
        acc
    }

    /// Interior temperature at cell `i`.
    pub fn value(&self, i: i64) -> f64 {
        self.curr[self.idx(i)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_1d_counts() {
        let s = Stencil1d::build(0.1, 0.3, Influence::Constant);
        assert_eq!(s.offsets, vec![-3, -2, -1, 1, 2, 3]);
        // Σ w = 6·h·J = 0.6
        assert!((s.sum_w - 0.6).abs() < 1e-12);
    }

    #[test]
    fn sum_w_approximates_interval_length() {
        // Σ w ≈ 2ε for J = 1.
        let s = Stencil1d::build(1.0 / 1000.0, 8.0 / 1000.0, Influence::Constant);
        assert!((s.sum_w - 2.0 * 8.0 / 1000.0).abs() / (0.016) < 0.1);
    }

    #[test]
    fn manufactured_error_small() {
        let mut solver = Serial1dSolver::new(64, 4.0, 1.0, 0.5);
        let err = solver.run_with_error(20);
        assert!(err.total() < 1e-6, "1d error {}", err.total());
    }

    #[test]
    fn error_decreases_with_h() {
        let mut errs = Vec::new();
        for n in [16usize, 32, 64, 128] {
            let mut solver = Serial1dSolver::new(n, 4.0, 1.0, 0.5);
            errs.push(solver.run_with_error(10).total());
        }
        for w in errs.windows(2) {
            assert!(w[1] < w[0], "1d convergence: {errs:?}");
        }
    }

    #[test]
    fn boundary_cells_feel_the_zero_collar() {
        // without a source, an initially-constant field decays fastest at
        // the edges (heat leaks into the collar)
        let mut solver = Serial1dSolver::new(32, 2.0, 1.0, 0.5);
        // overwrite the manufactured initial condition with a constant
        for i in 0..32i64 {
            let idx = solver.idx(i);
            solver.curr[idx] = 1.0;
        }
        // zero the source by stepping manually without it
        let t_dummy = 0.25; // cos(2π·0.25)=0 kills the L-term; sin kills S?
        let _ = t_dummy;
        // simpler: directly apply one diffusion-only update
        let dt = solver.dt;
        let c = solver.c;
        let mut next = vec![0.0; solver.curr.len()];
        for i in 0..32i64 {
            let base = solver.idx(i);
            let ui = solver.curr[base];
            let mut acc = 0.0;
            for (&di, &w) in solver.stencil.offsets.iter().zip(&solver.stencil.weights) {
                acc += w * (solver.curr[solver.idx(i + di)] - ui);
            }
            next[base] = ui + dt * c * acc;
        }
        let edge = next[solver.idx(0)];
        let middle = next[solver.idx(16)];
        assert!(
            edge < middle,
            "edge {edge} must cool faster than middle {middle}"
        );
        assert!(
            (middle - 1.0).abs() < 1e-12,
            "interior far from edges unchanged"
        );
    }

    #[test]
    fn dt_respects_stability_bound() {
        let solver = Serial1dSolver::new(50, 3.0, 2.0, 0.5);
        let lambda = solver.c * solver.stencil.sum_w;
        assert!(solver.dt() * lambda <= 1.0 + 1e-12);
    }
}
