//! Single-threaded reference solver.
//!
//! The paper's development path starts from "a single-threaded version"
//! (§6); this solver is that baseline. The whole mesh is one padded tile
//! (the collar stays zero, enforcing the boundary condition of eq. 4), and
//! every timestep applies the discrete operator of eq. 5 over the interior.
//! The distributed solvers are validated against it bit-for-bit.

use crate::kernel::{KernelPlan, NonlocalKernel, SourceFn};
use crate::manufactured::Manufactured;
use crate::norms::{step_error, ErrorAccumulator};
use crate::problem::ProblemParts;
use nlheat_mesh::{Grid, Rect, Tile};
use std::sync::Arc;

/// Forward-Euler time-stepping on a single thread.
pub struct SerialSolver {
    grid: Grid,
    kernel: NonlocalKernel,
    source: SourceFn,
    curr: Tile,
    next: Tile,
    plan: KernelPlan,
    dt: f64,
    step: usize,
    /// Present when built via [`SerialSolver::manufactured`]; enables
    /// [`run_with_error`](Self::run_with_error).
    exact: Option<Arc<Manufactured>>,
}

impl SerialSolver {
    /// Build a solver from grid + kernel + source + initial condition.
    ///
    /// # Panics
    /// Panics for non-square grids.
    pub fn new(
        grid: &Grid,
        kernel: NonlocalKernel,
        source: SourceFn,
        initial: impl Fn(i64, i64) -> f64,
        dt: f64,
    ) -> Self {
        assert_eq!(grid.nx, grid.ny, "serial solver expects a square grid");
        assert!(dt > 0.0);
        let mut curr = Tile::new(grid.nx, grid.halo);
        for lj in 0..grid.ny {
            for li in 0..grid.nx {
                curr.set(li, lj, initial(li, lj));
            }
        }
        let next = Tile::new(grid.nx, grid.halo);
        let plan = kernel.plan(curr.stride());
        SerialSolver {
            grid: *grid,
            kernel,
            source,
            curr,
            next,
            plan,
            dt,
            step: 0,
            exact: None,
        }
    }

    /// The manufactured-solution configuration of [`ProblemParts`].
    pub fn manufactured(parts: &ProblemParts) -> Self {
        let m = parts.manufactured.clone();
        let init = {
            let m = m.clone();
            move |gi: i64, gj: i64| m.initial(gi, gj)
        };
        let mut solver = SerialSolver::new(
            &parts.grid,
            parts.kernel.clone(),
            m.source_fn(),
            init,
            parts.dt,
        );
        solver.exact = Some(m);
        solver
    }

    /// Advance one timestep.
    pub fn step(&mut self) {
        let region = Rect::new(0, 0, self.grid.nx, self.grid.ny);
        let t = self.time();
        self.kernel.apply_region_blocked(
            &self.curr,
            &mut self.next,
            &region,
            &self.plan,
            (0, 0),
            t,
            self.dt,
            &self.source,
            1,
        );
        std::mem::swap(&mut self.curr, &mut self.next);
        self.step += 1;
    }

    /// Advance `n` timesteps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Advance `n` steps, recording the error (eq. 7) against the
    /// manufactured solution after every step.
    ///
    /// # Panics
    /// Panics unless the solver was built via
    /// [`SerialSolver::manufactured`].
    pub fn run_with_error(&mut self, n: usize) -> ErrorAccumulator {
        let m = self
            .exact
            .clone()
            .expect("run_with_error requires a manufactured-solution solver");
        let mut acc = ErrorAccumulator::new();
        for _ in 0..n {
            self.step();
            acc.push(self.error_vs(|t, gi, gj| m.exact(t, gi, gj)));
        }
        acc
    }

    /// Current numerical error `e_k` against an exact-solution closure.
    pub fn error_vs(&self, exact: impl Fn(f64, i64, i64) -> f64) -> f64 {
        let t = self.time();
        let pairs = (0..self.grid.ny).flat_map(|gj| (0..self.grid.nx).map(move |gi| (gi, gj)));
        step_error(
            self.grid.h,
            2,
            pairs.map(|(gi, gj)| (exact(t, gi, gj), self.curr.get(gi, gj))),
        )
    }

    /// Temperature at interior cell `(gi, gj)`.
    pub fn value(&self, gi: i64, gj: i64) -> f64 {
        self.curr.get(gi, gj)
    }

    /// Simulated time `t_k = k·Δt`.
    pub fn time(&self) -> f64 {
        self.step as f64 * self.dt
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    /// The timestep in use.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Row-major copy of the interior field (for comparisons).
    pub fn field(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.grid.n_dofs());
        for gj in 0..self.grid.ny {
            for gi in 0..self.grid.nx {
                out.push(self.curr.get(gi, gj));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::influence::Influence;
    use crate::kernel::zero_source;
    use crate::problem::ProblemSpec;

    #[test]
    fn zero_initial_zero_source_stays_zero() {
        let grid = Grid::square(16, 2.0);
        let kernel = NonlocalKernel::new(&grid, 1.0, Influence::Constant);
        let dt = kernel.stable_dt(0.5);
        let mut s = SerialSolver::new(&grid, kernel, zero_source(), |_, _| 0.0, dt);
        s.run(5);
        assert_eq!(s.field().iter().map(|v| v.abs()).sum::<f64>(), 0.0);
    }

    #[test]
    fn heat_decays_without_source() {
        // With zero boundary and no source, total heat must decay.
        let grid = Grid::square(16, 2.0);
        let kernel = NonlocalKernel::new(&grid, 1.0, Influence::Constant);
        let dt = kernel.stable_dt(0.5);
        let mut s = SerialSolver::new(&grid, kernel, zero_source(), |_, _| 1.0, dt);
        let sum0: f64 = s.field().iter().sum();
        s.run(20);
        let sum1: f64 = s.field().iter().sum();
        assert!(sum1 < sum0, "heat must leak into the zero collar");
        assert!(sum1 > 0.0, "but not vanish in 20 steps");
    }

    #[test]
    fn solution_stays_bounded_at_stable_dt() {
        let grid = Grid::square(20, 3.0);
        let kernel = NonlocalKernel::new(&grid, 1.0, Influence::Constant);
        let dt = kernel.stable_dt(0.9);
        let mut s = SerialSolver::new(
            &grid,
            kernel,
            zero_source(),
            |gi, gj| if (gi + gj) % 2 == 0 { 1.0 } else { -1.0 },
            dt,
        );
        s.run(50);
        let max = s.field().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max <= 1.0 + 1e-9, "oscillatory mode must not grow: {max}");
    }

    #[test]
    fn manufactured_error_is_small() {
        let parts = ProblemSpec::square(24, 3.0).build();
        let mut s = SerialSolver::manufactured(&parts);
        let m = parts.manufactured.clone();
        s.run(10);
        let e = s.error_vs(|t, gi, gj| m.exact(t, gi, gj));
        assert!(e < 1e-5, "manufactured error too large: {e}");
    }

    #[test]
    fn manufactured_error_decreases_with_mesh() {
        // The Fig. 8 property at test scale: e(h) decreasing in h.
        let mut errors = Vec::new();
        for n in [8usize, 16, 32] {
            let parts = ProblemSpec::square(n, 2.0).build();
            let mut s = SerialSolver::manufactured(&parts);
            let m = parts.manufactured.clone();
            let mut acc = ErrorAccumulator::new();
            for _ in 0..8 {
                s.step();
                acc.push(s.error_vs(|t, gi, gj| m.exact(t, gi, gj)));
            }
            errors.push(acc.total());
        }
        assert!(
            errors[0] > errors[1] && errors[1] > errors[2],
            "errors must decrease with h: {errors:?}"
        );
    }

    #[test]
    fn time_advances_by_dt() {
        let parts = ProblemSpec::square(8, 2.0).build();
        let mut s = SerialSolver::manufactured(&parts);
        assert_eq!(s.time(), 0.0);
        s.run(3);
        assert!((s.time() - 3.0 * s.dt()).abs() < 1e-15);
        assert_eq!(s.steps_taken(), 3);
    }
}
