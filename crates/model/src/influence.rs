//! Influence function J and the conductivity constant c.
//!
//! The paper takes J = 1 for simplicity (§3) and derives, by matching the
//! Taylor expansion of the nonlocal operator against the classical
//! Laplacian (eq. 2):
//!
//! ```text
//! c = k / (ε³ M₂)      in 1d
//! c = 2k / (π ε⁴ M₃)   in 2d,      Mᵢ = ∫₀¹ J(r) rⁱ dr
//! ```

/// The influence (kernel) function J(r) on the normalized distance
/// r ∈ [0, 1].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Influence {
    /// J(r) = 1 — the paper's choice.
    Constant,
    /// J(r) = 1 − r — a common peridynamics kernel, included to show the
    /// framework is not tied to J = 1.
    Triangular,
}

impl Influence {
    /// Evaluate J(r) for normalized distance `r` (0 outside [0, 1]).
    pub fn eval(&self, r: f64) -> f64 {
        if !(0.0..=1.0).contains(&r) {
            return 0.0;
        }
        match self {
            Influence::Constant => 1.0,
            Influence::Triangular => 1.0 - r,
        }
    }

    /// The i-th moment Mᵢ = ∫₀¹ J(r) rⁱ dr (closed form).
    pub fn moment(&self, i: u32) -> f64 {
        let i = f64::from(i);
        match self {
            Influence::Constant => 1.0 / (i + 1.0),
            Influence::Triangular => 1.0 / (i + 1.0) - 1.0 / (i + 2.0),
        }
    }
}

/// The 2d conductivity constant c = 2k / (π ε⁴ M₃) (paper eq. 2).
pub fn conductivity_constant_2d(k: f64, eps: f64, j: Influence) -> f64 {
    2.0 * k / (std::f64::consts::PI * eps.powi(4) * j.moment(3))
}

/// The 1d conductivity constant c = k / (ε³ M₂) (paper eq. 2).
pub fn conductivity_constant_1d(k: f64, eps: f64, j: Influence) -> f64 {
    k / (eps.powi(3) * j.moment(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn constant_moments() {
        let j = Influence::Constant;
        assert!((j.moment(2) - 1.0 / 3.0).abs() < 1e-15);
        assert!((j.moment(3) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn triangular_moments() {
        let j = Influence::Triangular;
        // ∫ (1-r) r² = 1/3 - 1/4 = 1/12
        assert!((j.moment(2) - 1.0 / 12.0).abs() < 1e-15);
        // ∫ (1-r) r³ = 1/4 - 1/5 = 1/20
        assert!((j.moment(3) - 0.05).abs() < 1e-15);
    }

    #[test]
    fn moments_match_numerical_quadrature() {
        for j in [Influence::Constant, Influence::Triangular] {
            for i in 0..5u32 {
                let n = 100_000;
                let dr = 1.0 / n as f64;
                let num: f64 = (0..n)
                    .map(|s| {
                        let r = (s as f64 + 0.5) * dr;
                        j.eval(r) * r.powi(i as i32) * dr
                    })
                    .sum();
                assert!(
                    (num - j.moment(i)).abs() < 1e-6,
                    "moment {i} of {j:?}: {num} vs {}",
                    j.moment(i)
                );
            }
        }
    }

    #[test]
    fn constant_2d_reduces_to_closed_form() {
        // J = 1: c = 2k/(π ε⁴ · 1/4) = 8k/(π ε⁴)
        let c = conductivity_constant_2d(1.0, 0.1, Influence::Constant);
        assert!((c - 8.0 / (PI * 0.1f64.powi(4))).abs() / c < 1e-14);
    }

    #[test]
    fn constant_1d_reduces_to_closed_form() {
        // J = 1: c = k/(ε³ · 1/3) = 3k/ε³
        let c = conductivity_constant_1d(2.0, 0.2, Influence::Constant);
        assert!((c - 6.0 / 0.2f64.powi(3)).abs() / c < 1e-14);
    }

    #[test]
    fn eval_outside_horizon_is_zero() {
        assert_eq!(Influence::Constant.eval(1.5), 0.0);
        assert_eq!(Influence::Triangular.eval(-0.1), 0.0);
    }

    #[test]
    fn conductivity_scales_linearly_with_k() {
        let c1 = conductivity_constant_2d(1.0, 0.05, Influence::Constant);
        let c3 = conductivity_constant_2d(3.0, 0.05, Influence::Constant);
        assert!((c3 / c1 - 3.0).abs() < 1e-12);
    }
}
