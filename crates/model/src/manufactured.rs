//! Manufactured solution for validation (paper §3.2).
//!
//! With `w(t,x) = cos(2πt)·sin(2πx₁)·sin(2πx₂)` inside D (zero outside) and
//! the source chosen as `b = ∂w/∂t − c ∫ J (w(y) − w(x)) dy` (eq. 6), the
//! exact solution of the continuous problem is `u = w`.
//!
//! **Quadrature note (documented substitution):** the paper evaluates the
//! integral in `b` with some quadrature; we evaluate it with the *same*
//! discrete sum the solver uses, which makes `w` the exact solution of the
//! semi-discrete system. The measured error then isolates the forward-Euler
//! time discretization, which shrinks as h (and with it Δt, tied through
//! the stability bound) decreases — exactly the decay Fig. 8 shows.
//!
//! Because `w` separates as `cos(2πt)·S(x)`, the discrete operator applied
//! to `w` is `cos(2πt)·L` with a *time-independent* field
//! `L_i = Σ_j w_j (S_j − S_i)`, so `b` evaluation is O(1) per cell after a
//! one-time precomputation of S and L.

use crate::kernel::{NonlocalKernel, SourceFn};
use nlheat_mesh::{Grid, Tile};
use std::f64::consts::PI;
use std::sync::Arc;

/// Precomputed manufactured-solution fields for one grid resolution.
pub struct Manufactured {
    grid: Grid,
    c: f64,
    /// S(x) on the padded grid (zero on the collar).
    s: Tile,
    /// L_i = Σ_j w_j (S_j − S_i) on the interior.
    l: Tile,
}

impl Manufactured {
    /// Precompute S and L for `grid` under `kernel`.
    ///
    /// # Panics
    /// Panics for non-square grids (the validation study uses squares).
    pub fn new(grid: &Grid, kernel: &NonlocalKernel) -> Self {
        assert_eq!(
            grid.nx, grid.ny,
            "manufactured solution expects a square grid"
        );
        let n = grid.nx;
        let halo = grid.halo;
        let mut s = Tile::new(n, halo);
        for lj in -halo..n + halo {
            for li in -halo..n + halo {
                if grid.in_domain(li, lj) {
                    let x = grid.coord(li);
                    let y = grid.coord(lj);
                    s.set(li, lj, (2.0 * PI * x).sin() * (2.0 * PI * y).sin());
                }
                // collar cells stay zero: w ≡ 0 outside D
            }
        }
        let mut l = Tile::new(n, halo);
        for lj in 0..n {
            for li in 0..n {
                let si = s.get(li, lj);
                let mut acc = 0.0;
                for (&(di, dj), &w) in kernel.stencil.offsets.iter().zip(&kernel.weights) {
                    acc += w * (s.get(li + di, lj + dj) - si);
                }
                l.set(li, lj, acc);
            }
        }
        Manufactured {
            grid: *grid,
            c: kernel.c,
            s,
            l,
        }
    }

    /// Exact solution `w(t, x_i)` (zero outside D).
    pub fn exact(&self, t: f64, gi: i64, gj: i64) -> f64 {
        if !self.grid.in_domain(gi, gj) {
            return 0.0;
        }
        (2.0 * PI * t).cos() * self.s.get(gi, gj)
    }

    /// Initial condition `u₀(x_i) = w(0, x_i)`.
    pub fn initial(&self, gi: i64, gj: i64) -> f64 {
        self.exact(0.0, gi, gj)
    }

    /// Source `b(t, x_i)` per eq. 6 with the discrete quadrature.
    pub fn source(&self, t: f64, gi: i64, gj: i64) -> f64 {
        debug_assert!(self.grid.in_domain(gi, gj));
        let phase = 2.0 * PI * t;
        -2.0 * PI * phase.sin() * self.s.get(gi, gj) - self.c * phase.cos() * self.l.get(gi, gj)
    }

    /// The source as a shareable closure for the solvers.
    pub fn source_fn(self: &Arc<Self>) -> SourceFn {
        let me = self.clone();
        Arc::new(move |t, gi, gj| me.source(t, gi, gj))
    }

    /// The grid this instance was built for.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::influence::Influence;

    fn setup(n: usize, eps_mult: f64) -> (Grid, NonlocalKernel, Manufactured) {
        let grid = Grid::square(n, eps_mult);
        let kernel = NonlocalKernel::new(&grid, 1.0, Influence::Constant);
        let m = Manufactured::new(&grid, &kernel);
        (grid, kernel, m)
    }

    #[test]
    fn exact_is_zero_outside_domain() {
        let (_, _, m) = setup(16, 2.0);
        assert_eq!(m.exact(0.3, -1, 5), 0.0);
        assert_eq!(m.exact(0.3, 16, 5), 0.0);
    }

    #[test]
    fn exact_at_t0_equals_initial() {
        let (g, _, m) = setup(16, 2.0);
        for gj in 0..g.ny {
            for gi in 0..g.nx {
                assert_eq!(m.initial(gi, gj), m.exact(0.0, gi, gj));
            }
        }
    }

    #[test]
    fn initial_matches_analytic_sine_product() {
        let (g, _, m) = setup(32, 2.0);
        let (gi, gj) = (10, 20);
        let expected = (2.0 * PI * g.coord(gi)).sin() * (2.0 * PI * g.coord(gj)).sin();
        assert!((m.initial(gi, gj) - expected).abs() < 1e-14);
    }

    #[test]
    fn time_dependence_is_cosine() {
        let (_, _, m) = setup(16, 2.0);
        let v0 = m.exact(0.0, 8, 8);
        let v_quarter = m.exact(0.25, 8, 8);
        let v_half = m.exact(0.5, 8, 8);
        assert!(v_quarter.abs() < 1e-12, "cos(π/2) = 0");
        assert!((v_half + v0).abs() < 1e-12, "cos(π) = −1");
    }

    #[test]
    fn source_makes_w_a_discrete_steady_state() {
        // For the semi-discrete system dû/dt = b + cΣw(û_j − û_i),
        // û = w(t) must satisfy dû/dt = ∂w/∂t exactly. At t=0, ∂w/∂t = 0,
        // so b(0) + c·L·cos(0) must vanish identically.
        let (g, kernel, m) = setup(24, 3.0);
        for gj in 0..g.ny {
            for gi in 0..g.nx {
                let rhs = m.source(0.0, gi, gj) + kernel.c * m.l.get(gi, gj);
                assert!(rhs.abs() < 1e-10, "residual {rhs} at ({gi},{gj})");
            }
        }
    }

    #[test]
    fn l_field_is_negative_where_s_peaks() {
        // The nonlocal Laplacian of sin·sin is ≈ −8π²·S (scaled by c):
        // where S is maximal, L must be negative.
        let (g, kernel, m) = setup(64, 4.0);
        // S peaks near x = y = 0.25 -> cell 16
        let (gi, gj) = (15, 15);
        assert!(m.s.get(gi, gj) > 0.9);
        assert!(m.l.get(gi, gj) < 0.0);
        // The scaled operator approximates the local Laplacian eigenvalue:
        // c·L ≈ −8π²·k·S, within the nonlocal + boundary truncation error.
        let ratio = kernel.c * m.l.get(gi, gj) / (-8.0 * PI * PI * m.s.get(gi, gj));
        assert!(
            (0.7..1.3).contains(&ratio),
            "scaled operator ratio {ratio} too far from 1"
        );
        let _ = g;
    }
}
