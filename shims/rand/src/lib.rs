//! Minimal deterministic stand-in for the `rand` crate.
//!
//! The workspace only needs seeded, reproducible pseudo-randomness for the
//! multilevel partitioner (`StdRng::seed_from_u64`, `gen_range`, `shuffle`),
//! so this shim is a splitmix64 generator behind the same trait names. It is
//! **not** cryptographically secure and draws no OS entropy — seeds are
//! always explicit, which is exactly what reproducible partitions need.

/// Core generator trait: everything derives from `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        // Modulo bias is negligible for the partitioner's small spans.
        range.start + (self.next_u64() % span) as usize
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from an explicit integer seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zero fixed point and decorrelate tiny seeds.
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x9E37_79B9_97F4_A7C1,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (the `shuffle` subset).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
