//! Minimal deterministic stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro with `arg in strategy` bindings, `any::<T>()`, numeric range
//! strategies, `collection::vec`, simple `"[a-z]{lo,hi}"` string patterns,
//! `ProptestConfig::with_cases` and the `prop_assert*` macros. Cases are
//! generated from a fixed seed per test, so failures reproduce exactly;
//! there is no shrinking — the failing inputs are printed instead.

use std::ops::Range;

/// Deterministic splitmix64 source backing every strategy.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0DD0_5DD0_5DD0_5DD0,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        })*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Strategy for any value of a type with a canonical generator.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a canonical full-range generator.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.next_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// String pattern strategy supporting the `[a-z]{lo,hi}` shape (a single
/// character class with a repetition count). Anything else panics loudly
/// rather than silently generating the wrong distribution.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo_char, hi_char, lo_len, hi_len) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("proptest shim only supports '[x-y]{{lo,hi}}' string patterns, got {self:?}")
        });
        let len = (Range {
            start: lo_len,
            end: hi_len + 1,
        })
        .generate(rng);
        (0..len)
            .map(|_| {
                let span = hi_char as u32 - lo_char as u32 + 1;
                char::from_u32(lo_char as u32 + (rng.next_u64() as u32 % span)).unwrap()
            })
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(char, char, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let lo = chars.next()?;
    if chars.next()? != '-' {
        return None;
    }
    let hi = chars.next()?;
    if chars.next().is_some() {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (a, b) = counts.split_once(',')?;
    Some((lo, hi, a.trim().parse().ok()?, b.trim().parse().ok()?))
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length selector for [`vec`]: a fixed size or a half-open range.
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy yielding `Vec`s of `elem` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-block configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    // Mix the test name into the seed so sibling tests see
                    // different sequences; deterministic across runs.
                    let mut seed = 0xcbf29ce484222325u64;
                    for b in stringify!($name).bytes() {
                        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
                    }
                    let mut rng = $crate::TestRng::new(seed ^ case);
                    $( let $arg = $crate::Strategy::generate(&$strat, &mut rng); )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategies_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = (5u32..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_respected() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let s = "[a-z]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = collection::vec(0u64..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_smoke(x in 0usize..10, flips in collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert_eq!(flips.len() <= 3, true);
        }
    }
}
