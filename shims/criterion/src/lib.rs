//! Lightweight stand-in for the `criterion` benchmark harness.
//!
//! Keeps the macro/entry-point shape (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`) so the workspace's benches
//! compile and run offline. Instead of criterion's statistical machinery it
//! runs a warm-up plus an adaptively-sized measurement loop and prints the
//! mean per-iteration time.
//!
//! Machine-readable output: every completed benchmark is also recorded in a
//! process-global registry, and when the `NLHEAT_BENCH_JSON` environment
//! variable names a file path, `criterion_main!` writes all results there as
//! JSON on exit — the format `nlheat-bench`'s `bench_gate` regression gate
//! consumes (real criterion exposes the same data via
//! `target/criterion/*/estimates.json`; the env-var seam keeps the shim's
//! public API identical to the real crate).

pub use std::hint::black_box;

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed benchmark: label plus measured mean time per iteration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// `group/name` label.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured (after warm-up).
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Snapshot of every benchmark recorded so far in this process.
pub fn recorded_results() -> Vec<BenchRecord> {
    RESULTS.lock().unwrap().clone()
}

/// Serialize `results` as the JSON document `bench_gate` reads.
pub fn results_to_json(results: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.3}, \"iters\": {}}}{}\n",
            r.name.replace('"', "\\\""),
            r.mean_ns,
            r.iters,
            comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the recorded results to `$NLHEAT_BENCH_JSON` if set. Called by the
/// `criterion_main!` expansion after all groups ran; harmless to call twice.
pub fn write_json_if_requested() {
    if let Some(path) = std::env::var_os("NLHEAT_BENCH_JSON") {
        let results = recorded_results();
        let json = results_to_json(&results);
        // Cargo runs bench binaries from the package directory, not the
        // workspace root — create missing parents so a relative path
        // doesn't silently drop the results.
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("criterion shim: failed to write {path:?}: {e}");
        } else {
            println!("wrote {} bench results to {path:?}", results.len());
        }
    }
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's adaptive loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's adaptive loop ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench(label: &str, f: &mut impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters > 0 {
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        println!(
            "bench {label}: {:.3} ms/iter ({} iters)",
            per_iter * 1e3,
            b.iters
        );
        RESULTS.lock().unwrap().push(BenchRecord {
            name: label.to_string(),
            mean_ns: per_iter * 1e9,
            iters: b.iters,
        });
    } else {
        println!("bench {label}: no iterations recorded");
    }
}

/// Target measurement time per benchmark, overridable for smoke runs via
/// `NLHEAT_BENCH_TARGET_MS`.
fn target_measurement() -> Duration {
    let ms = std::env::var("NLHEAT_BENCH_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine adaptively: one untimed warm-up, a timed probe to
    /// size the loop, then a measurement loop targeting
    /// [`target_measurement`] total wall time (min 3 iterations so short
    /// routines still average over noise).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let probe_t0 = Instant::now();
        black_box(routine());
        let probe = probe_t0.elapsed().max(Duration::from_nanos(1));
        let target = target_measurement();
        let n = (target.as_nanos() / probe.as_nanos()).clamp(3, 100_000) as u64;
        let t0 = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.elapsed += t0.elapsed();
        self.iters += n;
    }
}

/// Collect benchmark functions into a runnable group, mirroring criterion's
/// plain `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the listed groups, then flushing the JSON
/// results if `NLHEAT_BENCH_JSON` requests them.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn results_are_recorded_and_serializable() {
        let mut c = Criterion::default();
        c.bench_function("recorded_smoke", |b| b.iter(|| black_box(2 + 2)));
        let all = recorded_results();
        let rec = all
            .iter()
            .find(|r| r.name == "recorded_smoke")
            .expect("bench recorded");
        assert!(rec.mean_ns > 0.0);
        assert!(rec.iters >= 3);
        let json = results_to_json(std::slice::from_ref(rec));
        assert!(json.contains("\"name\": \"recorded_smoke\""));
        assert!(json.contains("\"mean_ns\""));
    }
}
