//! Lightweight stand-in for the `criterion` benchmark harness.
//!
//! Keeps the macro/entry-point shape (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`) so the workspace's benches
//! compile and run offline. Instead of criterion's statistical machinery it
//! runs a short warm-up plus a fixed measurement loop and prints the mean
//! per-iteration time — enough to eyeball regressions from `cargo bench`.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's fixed loop ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench(label: &str, f: &mut impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters > 0 {
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        println!(
            "bench {label}: {:.3} ms/iter ({} iters)",
            per_iter * 1e3,
            b.iters
        );
    } else {
        println!("bench {label}: no iterations recorded");
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine a few times and accumulate wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let n = 3u64;
        let t0 = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.elapsed += t0.elapsed();
        self.iters += n;
    }
}

/// Collect benchmark functions into a runnable group, mirroring criterion's
/// plain `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
