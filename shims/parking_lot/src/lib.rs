//! Minimal std-backed stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! exact API subset the workspace uses: `Mutex`, `RwLock` and `Condvar` with
//! parking_lot's non-poisoning signatures (`lock()` returns a guard, not a
//! `Result`). Poisoned std locks are transparently recovered — a panic while
//! holding a lock does not poison subsequent accesses, matching parking_lot
//! semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`]. Holds the inner std guard in an
/// `Option` so [`Condvar`] can temporarily take it during waits.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A reader–writer lock with parking_lot's panic-free signatures.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, timed_out) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r.timed_out())
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(timed_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn panic_while_locked_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must stay usable after a panic");
    }
}
