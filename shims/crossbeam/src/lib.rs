//! Minimal std-backed stand-in for the `crossbeam` crate.
//!
//! Provides the subset this workspace uses: `channel` (MPMC unbounded
//! channels with timeouts), `deque` (injector + per-worker deques with
//! stealing) and `utils::CachePadded`. Implementations favour simplicity
//! over raw throughput; semantics (blocking, disconnection, LIFO worker
//! pop vs FIFO steal) match the real crate for the paths exercised here.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        cv: Condvar,
    }

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                buf: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if q.receivers == 0 {
                return Err(SendError(value));
            }
            q.buf.push_back(value);
            drop(q);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.senders -= 1;
            let last = q.senders == 0;
            drop(q);
            if last {
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.buf.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match q.buf.pop_front() {
                Some(v) => Ok(v),
                None if q.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.buf.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers -= 1;
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Outcome of a steal attempt.
    pub enum Steal<T> {
        Success(T),
        Empty,
        Retry,
    }

    /// Global FIFO injection queue.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.q
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
        }

        pub fn is_empty(&self) -> bool {
            self.q
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }

        /// Pop one task for the calling worker (the real crate also moves a
        /// batch into `_dest`; one at a time is sufficient here).
        pub fn steal_batch_and_pop(&self, _dest: &Worker<T>) -> Steal<T> {
            match self
                .q
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    /// A per-worker deque: LIFO for the owner, FIFO for stealers.
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_lifo() -> Self {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn push(&self, value: T) {
            self.q
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.q
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_back()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }
    }

    /// Steals from the front of another worker's deque.
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self
                .q
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }
}

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Aligns the wrapped value to a cache line to avoid false sharing.
    #[derive(Debug, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use super::deque::{Injector, Steal, Worker};
    use std::time::Duration;

    #[test]
    fn channel_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u8>();
        let r = rx.recv_timeout(Duration::from_millis(5));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn channel_crosses_threads() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        t.join().unwrap();
    }

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        let s = w.stealer();
        assert!(matches!(s.steal(), Steal::Success(1)));
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn injector_hands_out_tasks() {
        let inj = Injector::new();
        let w = Worker::new_lifo();
        inj.push(7);
        assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Success(7)));
        assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Empty));
    }
}
