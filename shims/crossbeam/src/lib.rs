//! Minimal std-backed stand-in for the `crossbeam` crate.
//!
//! Provides the subset this workspace uses: `channel` (MPMC unbounded
//! channels with timeouts), `deque` (a lock-free Chase–Lev per-worker
//! deque plus a sharded injector) and `utils::CachePadded`. Semantics
//! (blocking, disconnection, LIFO worker pop vs FIFO steal, batch
//! transfer into the destination worker) match the real crate for the
//! paths exercised here.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        cv: Condvar,
    }

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                buf: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if q.receivers == 0 {
                return Err(SendError(value));
            }
            q.buf.push_back(value);
            drop(q);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.senders -= 1;
            let last = q.senders == 0;
            drop(q);
            if last {
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.buf.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match q.buf.pop_front() {
                Some(v) => Ok(v),
                None if q.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.buf.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers -= 1;
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

pub mod deque {
    //! Work-stealing deques: a lock-free Chase–Lev deque per worker
    //! (Chase & Lev, SPAA 2005, with the C11 orderings of Lê, Pop,
    //! Cohen & Zappa Nardelli, PPoPP 2013) and a sharded MPMC injector.
    //!
    //! Elements are stored as boxed pointers in `AtomicPtr` slots, so
    //! every slot read/write is a single atomic word: stealers may race
    //! with the owner's push/pop and with buffer growth without ever
    //! reading a torn `T`. Ownership of an element transfers exactly
    //! once — to the stealer that wins the `top` CAS, or to the owner's
    //! `pop` (which CASes `top` itself for the last element). Retired
    //! grow buffers are kept alive until the deque drops, because a
    //! stealer that read the old buffer pointer may still index it; the
    //! grow copies every live slot, so any reachable buffer version
    //! holds a valid pointer for any index the `top` CAS can validate.

    use std::collections::VecDeque;
    use std::marker::PhantomData;
    use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, PoisonError};

    /// Outcome of a steal attempt.
    pub enum Steal<T> {
        Success(T),
        Empty,
        Retry,
    }

    /// Default batch bound for `steal_batch_and_pop`: enough to amortize
    /// the CAS traffic, small enough that one thief cannot drain a
    /// straggler's whole deque in one visit.
    const MAX_BATCH: usize = 32;

    /// Initial per-worker ring capacity (grows by doubling).
    const INITIAL_CAP: usize = 64;

    /// A growable ring of `AtomicPtr` slots indexed by the unbounded
    /// Chase–Lev positions (wrapping via the power-of-two mask).
    struct Buffer<T> {
        slots: Box<[AtomicPtr<T>]>,
        mask: usize,
    }

    impl<T> Buffer<T> {
        fn new(cap: usize) -> Self {
            debug_assert!(cap.is_power_of_two());
            Buffer {
                slots: (0..cap)
                    .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                    .collect(),
                mask: cap - 1,
            }
        }

        fn cap(&self) -> usize {
            self.slots.len()
        }

        fn slot(&self, index: isize) -> &AtomicPtr<T> {
            &self.slots[index as usize & self.mask]
        }
    }

    struct Inner<T> {
        /// Stealer end — advances monotonically, one CAS per element.
        top: AtomicIsize,
        /// Owner end — only the owning `Worker` writes it.
        bottom: AtomicIsize,
        /// Current ring; swapped (never mutated in place) on growth.
        buffer: AtomicPtr<Buffer<T>>,
        /// Rings replaced by growth, freed on drop: a concurrent stealer
        /// may hold a pointer to any previous version.
        retired: Mutex<Vec<*mut Buffer<T>>>,
    }

    unsafe impl<T: Send> Send for Inner<T> {}
    unsafe impl<T: Send> Sync for Inner<T> {}

    impl<T> Drop for Inner<T> {
        fn drop(&mut self) {
            // Exclusive access: free the elements still queued, then every
            // buffer version.
            let t = *self.top.get_mut();
            let b = *self.bottom.get_mut();
            let buf_ptr = *self.buffer.get_mut();
            unsafe {
                let buf = &*buf_ptr;
                for i in t..b {
                    drop(Box::from_raw(buf.slot(i).load(Ordering::Relaxed)));
                }
                drop(Box::from_raw(buf_ptr));
            }
            let retired =
                std::mem::take(&mut *self.retired.lock().unwrap_or_else(PoisonError::into_inner));
            for p in retired {
                unsafe { drop(Box::from_raw(p)) };
            }
        }
    }

    /// The owner end of a Chase–Lev deque: LIFO `push`/`pop`, no locks,
    /// no CAS except when racing stealers for the last element. `Send`
    /// but not `Sync` — exactly one thread may own it at a time.
    pub struct Worker<T> {
        inner: Arc<Inner<T>>,
        /// The owner-end protocol is single-writer; suppress `Sync`.
        _not_sync: PhantomData<std::cell::Cell<()>>,
    }

    unsafe impl<T: Send> Send for Worker<T> {}

    impl<T> Worker<T> {
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Inner {
                    top: AtomicIsize::new(0),
                    bottom: AtomicIsize::new(0),
                    buffer: AtomicPtr::new(Box::into_raw(Box::new(Buffer::new(INITIAL_CAP)))),
                    retired: Mutex::new(Vec::new()),
                }),
                _not_sync: PhantomData,
            }
        }

        pub fn push(&self, value: T) {
            let inner = &*self.inner;
            let b = inner.bottom.load(Ordering::Relaxed);
            let t = inner.top.load(Ordering::Acquire);
            let mut buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
            if b - t >= buf.cap() as isize {
                self.grow(t, b);
                buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
            }
            buf.slot(b)
                .store(Box::into_raw(Box::new(value)), Ordering::Relaxed);
            // Publish: a stealer that acquires this bottom also sees the
            // slot store (and, transitively, the buffer swap of any grow).
            inner.bottom.store(b + 1, Ordering::Release);
        }

        /// Double the ring, copying the live window `[t, b)`. The old
        /// buffer is retired, not freed: stealers may already hold it,
        /// and its copy of any still-unstolen index stays valid.
        fn grow(&self, t: isize, b: isize) {
            let inner = &*self.inner;
            let old_ptr = inner.buffer.load(Ordering::Relaxed);
            let old = unsafe { &*old_ptr };
            let new = Buffer::new(old.cap() * 2);
            for i in t..b {
                new.slot(i)
                    .store(old.slot(i).load(Ordering::Relaxed), Ordering::Relaxed);
            }
            inner
                .buffer
                .store(Box::into_raw(Box::new(new)), Ordering::Release);
            inner
                .retired
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(old_ptr);
        }

        /// LIFO pop from the owner end. Lock-free; a single `top` CAS
        /// arbitrates the last element against concurrent stealers.
        pub fn pop(&self) -> Option<T> {
            let inner = &*self.inner;
            let b = inner.bottom.load(Ordering::Relaxed) - 1;
            inner.bottom.store(b, Ordering::Relaxed);
            // Order the bottom write before the top read (the Chase–Lev
            // "reserve then check" handshake with the stealer's fence).
            fence(Ordering::SeqCst);
            let t = inner.top.load(Ordering::Relaxed);
            if t > b {
                // Deque was empty; undo the reservation.
                inner.bottom.store(b + 1, Ordering::Relaxed);
                return None;
            }
            let buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
            let elem = buf.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Last element: win it with the same CAS stealers use.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                won.then(|| unsafe { *Box::from_raw(elem) })
            } else {
                Some(unsafe { *Box::from_raw(elem) })
            }
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: self.inner.clone(),
            }
        }
    }

    /// Steals from the top (FIFO) end of another worker's deque.
    pub struct Stealer<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Lock-free single-element steal: one `top` CAS claims the
        /// oldest element; a lost race reports [`Steal::Retry`].
        pub fn steal(&self) -> Steal<T> {
            let inner = &*self.inner;
            let t = inner.top.load(Ordering::Acquire);
            // Pair with the owner's pop fence so the bottom read below
            // cannot pass the top read above.
            fence(Ordering::SeqCst);
            let b = inner.bottom.load(Ordering::Acquire);
            if t >= b {
                return Steal::Empty;
            }
            // Loaded after bottom: the acquire on bottom orders this read
            // after any grow that published the bottom value we saw, so
            // the buffer version holds a valid pointer for index `t`
            // whenever the CAS below validates `top == t`.
            let buf = unsafe { &*inner.buffer.load(Ordering::Acquire) };
            let elem = buf.slot(t).load(Ordering::Relaxed);
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(unsafe { *Box::from_raw(elem) })
            } else {
                Steal::Retry
            }
        }

        /// Steal up to `limit` elements: the first is returned, the rest
        /// are pushed into `dest`. Each element is claimed by its own
        /// `top` CAS — a wider CAS would race the owner's `pop`, which
        /// takes elements from the other end without touching `top`
        /// until the deque is nearly empty.
        pub fn steal_batch_with_limit_and_pop(&self, dest: &Worker<T>, limit: usize) -> Steal<T> {
            let mut first = None;
            for taken in 0..limit.max(1) {
                match self.steal() {
                    Steal::Success(v) => {
                        if first.is_none() {
                            first = Some(v);
                        } else {
                            dest.push(v);
                        }
                    }
                    Steal::Retry if taken == 0 => return Steal::Retry,
                    Steal::Empty | Steal::Retry => break,
                }
            }
            match first {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// [`Self::steal_batch_with_limit_and_pop`] at the default bound.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            self.steal_batch_with_limit_and_pop(dest, MAX_BATCH)
        }
    }

    /// How many independently locked FIFO shards back an [`Injector`]:
    /// spawners round-robin across them, so concurrent pushes (and
    /// concurrent worker drains) mostly touch different locks.
    const INJECTOR_SHARDS: usize = 8;

    /// Global MPMC injection queue, sharded to keep spawn and drain
    /// traffic from serializing on one lock. FIFO within a shard;
    /// round-robin push keeps global ordering approximately FIFO.
    pub struct Injector<T> {
        shards: Box<[super::utils::CachePadded<Mutex<VecDeque<T>>>]>,
        push_idx: AtomicUsize,
        steal_idx: AtomicUsize,
        len: AtomicUsize,
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                shards: (0..INJECTOR_SHARDS)
                    .map(|_| super::utils::CachePadded::new(Mutex::new(VecDeque::new())))
                    .collect(),
                push_idx: AtomicUsize::new(0),
                steal_idx: AtomicUsize::new(0),
                len: AtomicUsize::new(0),
            }
        }

        pub fn push(&self, value: T) {
            let i = self.push_idx.fetch_add(1, Ordering::Relaxed) % INJECTOR_SHARDS;
            self.shards[i]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.len.fetch_add(1, Ordering::Release);
        }

        /// Approximate emptiness — exact once the queue is quiescent,
        /// which is all the pool's sleep check needs.
        pub fn is_empty(&self) -> bool {
            self.len.load(Ordering::Acquire) == 0
        }

        /// Pop one task for the calling worker.
        pub fn steal(&self) -> Steal<T> {
            if self.is_empty() {
                return Steal::Empty;
            }
            let start = self.steal_idx.fetch_add(1, Ordering::Relaxed);
            for k in 0..INJECTOR_SHARDS {
                let shard = &self.shards[(start + k) % INJECTOR_SHARDS];
                let mut q = shard.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(v) = q.pop_front() {
                    self.len.fetch_sub(1, Ordering::Release);
                    return Steal::Success(v);
                }
            }
            Steal::Empty
        }

        /// Move up to `limit` tasks out of the shards: the first is
        /// returned, the rest land in `dest`'s deque (where deque peers
        /// can re-steal them).
        pub fn steal_batch_with_limit_and_pop(&self, dest: &Worker<T>, limit: usize) -> Steal<T> {
            let mut first = None;
            let taken = self.take(limit.max(1), dest, &mut first);
            match (taken, first) {
                (0, _) => Steal::Empty,
                (_, Some(v)) => Steal::Success(v),
                (_, None) => unreachable!("the first taken task is always captured"),
            }
        }

        /// [`Self::steal_batch_with_limit_and_pop`] at the default bound.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            self.steal_batch_with_limit_and_pop(dest, MAX_BATCH)
        }

        /// Drain up to `limit` tasks scanning shards from a rotating
        /// start (pushes round-robin, so a batch usually spans shards —
        /// one lock acquisition per shard visited). Returns the number
        /// taken; routes the first into `first`, the rest into `dest`'s
        /// deque.
        fn take(&self, limit: usize, dest: &Worker<T>, first: &mut Option<T>) -> usize {
            if self.is_empty() {
                return 0;
            }
            let start = self.steal_idx.fetch_add(1, Ordering::Relaxed);
            let mut taken = 0;
            for k in 0..INJECTOR_SHARDS {
                if taken >= limit {
                    break;
                }
                let shard = &self.shards[(start + k) % INJECTOR_SHARDS];
                let mut q = shard.lock().unwrap_or_else(PoisonError::into_inner);
                let n = (limit - taken).min(q.len());
                if n == 0 {
                    continue;
                }
                self.len.fetch_sub(n, Ordering::Release);
                for _ in 0..n {
                    let v = q.pop_front().expect("len-checked");
                    if taken == 0 {
                        *first = Some(v);
                    } else {
                        dest.push(v);
                    }
                    taken += 1;
                }
            }
            taken
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }
}

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Aligns the wrapped value to a cache line to avoid false sharing.
    #[derive(Debug, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use super::deque::{Injector, Steal, Worker};
    use std::time::Duration;

    #[test]
    fn channel_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u8>();
        let r = rx.recv_timeout(Duration::from_millis(5));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn channel_crosses_threads() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        t.join().unwrap();
    }

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        let s = w.stealer();
        assert!(matches!(s.steal(), Steal::Success(1)));
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn injector_hands_out_tasks() {
        let inj = Injector::new();
        let w = Worker::new_lifo();
        inj.push(7);
        assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Success(7)));
        assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Empty));
    }

    #[test]
    fn stealer_batch_transfers_into_dest() {
        let src = Worker::new_lifo();
        for i in 0..10 {
            src.push(i);
        }
        let dest = Worker::new_lifo();
        // limit 4: first element returned, three moved into dest
        let got = src.stealer().steal_batch_with_limit_and_pop(&dest, 4);
        assert!(matches!(got, Steal::Success(0)));
        assert_eq!(dest.pop(), Some(3), "dest drains LIFO");
        assert_eq!(dest.pop(), Some(2));
        assert_eq!(dest.pop(), Some(1));
        assert_eq!(dest.pop(), None);
        // the source kept the rest
        assert_eq!(src.pop(), Some(9));
    }

    #[test]
    fn injector_batch_transfers_into_dest() {
        let inj = Injector::new();
        for i in 0..6 {
            inj.push(i);
        }
        let dest = Worker::new_lifo();
        let got = inj.steal_batch_with_limit_and_pop(&dest, 4);
        let Steal::Success(first) = got else {
            panic!("expected a task");
        };
        let mut moved = Vec::new();
        while let Some(v) = dest.pop() {
            moved.push(v);
        }
        assert_eq!(moved.len(), 3, "batch of 4: one popped, three moved");
        assert!(!inj.is_empty(), "two tasks stay queued");
        let mut rest = Vec::new();
        loop {
            match inj.steal() {
                Steal::Success(v) => rest.push(v),
                Steal::Empty => break,
                Steal::Retry => {}
            }
        }
        let mut all: Vec<i32> = moved;
        all.push(first);
        all.extend(rest);
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn single_stealer_sees_fifo_order_across_growth() {
        // No owner pops: a lone stealer must observe exact push order,
        // including across several buffer growths (initial cap is 64).
        let w = Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        let s = w.stealer();
        for want in 0..1000 {
            loop {
                match s.steal() {
                    Steal::Success(v) => {
                        assert_eq!(v, want);
                        break;
                    }
                    Steal::Retry => {}
                    Steal::Empty => panic!("lost task {want}"),
                }
            }
        }
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn chase_lev_stress_no_lost_or_duplicated_tasks() {
        // Concurrent owner (push + interleaved LIFO pops) vs 4 stealers
        // hammering single-element steals: every task must be received
        // exactly once, across buffer growths and last-element races.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        const ITEMS: usize = 20_000;
        const STEALERS: usize = 4;
        let w = Worker::new_lifo();
        let done = Arc::new(AtomicBool::new(false));
        let mut thieves = Vec::new();
        for _ in 0..STEALERS {
            let s = w.stealer();
            let done = done.clone();
            thieves.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while !done.load(Ordering::Acquire) {
                    match s.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Empty => std::thread::yield_now(),
                        Steal::Retry => {}
                    }
                }
                got
            }));
        }
        let mut all = Vec::new();
        for i in 0..ITEMS {
            w.push(i);
            if i % 3 == 0 {
                if let Some(v) = w.pop() {
                    all.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            all.push(v);
        }
        // The deque is empty; anything not popped here is already owned
        // by exactly one stealer.
        done.store(true, Ordering::Release);
        for t in thieves {
            all.extend(t.join().unwrap());
        }
        assert_eq!(all.len(), ITEMS, "lost or duplicated tasks");
        all.sort_unstable();
        for (want, got) in all.iter().enumerate() {
            assert_eq!(want, *got, "task multiset corrupted");
        }
    }

    #[test]
    fn batch_steal_stress_no_lost_or_duplicated_tasks() {
        // Same exactly-once contract under batch transfer: thieves pull
        // batches into their own deque and drain it locally — the path
        // the pool's find_task runs.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        const ITEMS: usize = 20_000;
        const STEALERS: usize = 3;
        let w = Worker::new_lifo();
        let done = Arc::new(AtomicBool::new(false));
        let mut thieves = Vec::new();
        for _ in 0..STEALERS {
            let s = w.stealer();
            let done = done.clone();
            thieves.push(std::thread::spawn(move || {
                let local = Worker::new_lifo();
                let mut got = Vec::new();
                while !done.load(Ordering::Acquire) {
                    match s.steal_batch_with_limit_and_pop(&local, 8) {
                        Steal::Success(v) => {
                            got.push(v);
                            while let Some(v) = local.pop() {
                                got.push(v);
                            }
                        }
                        Steal::Empty => std::thread::yield_now(),
                        Steal::Retry => {}
                    }
                }
                got
            }));
        }
        let mut all = Vec::new();
        for i in 0..ITEMS {
            w.push(i);
            if i % 5 == 0 {
                if let Some(v) = w.pop() {
                    all.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            all.push(v);
        }
        done.store(true, Ordering::Release);
        for t in thieves {
            all.extend(t.join().unwrap());
        }
        assert_eq!(all.len(), ITEMS, "lost or duplicated tasks");
        all.sort_unstable();
        for (want, got) in all.iter().enumerate() {
            assert_eq!(want, *got, "task multiset corrupted");
        }
    }

    #[test]
    fn injector_stress_concurrent_producers_and_consumers() {
        // The sharded injector is the pool's spawn path: 2 producers vs
        // 3 consumers draining through batch transfer, exactly once.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        const PER_PRODUCER: usize = 5_000;
        const PRODUCERS: usize = 2;
        let inj = Arc::new(Injector::new());
        let mut producers = Vec::new();
        for pid in 0..PRODUCERS {
            let inj = inj.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    inj.push(pid * PER_PRODUCER + i);
                }
            }));
        }
        let received = Arc::new(AtomicUsize::new(0));
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let inj = inj.clone();
            let received = received.clone();
            consumers.push(std::thread::spawn(move || {
                let local = Worker::new_lifo();
                let mut got = Vec::new();
                while received.load(Ordering::Acquire) < PRODUCERS * PER_PRODUCER {
                    match inj.steal_batch_and_pop(&local) {
                        Steal::Success(v) => {
                            let mut n = 1;
                            got.push(v);
                            while let Some(v) = local.pop() {
                                got.push(v);
                                n += 1;
                            }
                            received.fetch_add(n, Ordering::AcqRel);
                        }
                        Steal::Empty => std::thread::yield_now(),
                        Steal::Retry => {}
                    }
                }
                got
            }));
        }
        for t in producers {
            t.join().unwrap();
        }
        let mut all = Vec::new();
        for t in consumers {
            all.extend(t.join().unwrap());
        }
        assert_eq!(all.len(), PRODUCERS * PER_PRODUCER);
        all.sort_unstable();
        for (want, got) in all.iter().enumerate() {
            assert_eq!(want, *got);
        }
    }
}
