//! Minimal std-backed stand-in for the `bytes` crate.
//!
//! `Bytes` is a cheaply-cloneable immutable byte buffer (an `Arc<Vec<u8>>`
//! plus a view range), `BytesMut` a growable builder that freezes into
//! `Bytes`, and `Buf`/`BufMut` provide the little-endian cursor methods the
//! workspace codec uses. Only the API surface exercised here is provided.

use std::fmt;
use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// A cheaply-cloneable, sliceable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// A buffer copied from a static slice (the real crate borrows it; the
    /// one-time copy is irrelevant at this workspace's message sizes).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Read cursor over a byte buffer; all multi-byte reads are little-endian
/// (`_le`) to match the workspace wire format.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }
}

/// A growable byte builder; freeze into [`Bytes`] when done.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    pub fn len(&self) -> usize {
        self.vec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }

    /// Grow (zero-filling with `value`) or shrink to `new_len` bytes —
    /// lets bulk encoders allocate once and write through `DerefMut`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.vec.resize(new_len, value);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

/// Write cursor; little-endian (`_le`) multi-byte writes.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEADBEEF);
        w.put_f64_le(-2.5);
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 13);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEADBEEF);
        assert_eq!(b.get_f64_le(), -2.5);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5, "slicing must not consume the parent");
    }

    #[test]
    fn clone_shares_storage() {
        let b = Bytes::from(vec![0u8; 1024]);
        let c = b.clone();
        assert_eq!(c.len(), 1024);
        assert!(Arc::ptr_eq(&b.data, &c.data));
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(b.remaining(), 2);
    }
}
